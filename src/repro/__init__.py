"""LRGP — utility optimization for event-driven distributed infrastructures.

A full reproduction of Lumezanu, Bhola & Astley (ICDCS 2006): the LRGP
distributed optimizer (Lagrangian rate allocation + greedy consumer
admission linked by benefit/cost node prices), the system model it runs on,
a message-passing runtime, an event-driven pub/sub simulator used to
validate the resource model, baselines (simulated annealing among them),
the paper's workloads and the full experiment harness.

Quickstart::

    from repro import LRGP, base_workload, total_utility

    problem = base_workload()
    optimizer = LRGP(problem)
    optimizer.run(250)
    print(total_utility(problem, optimizer.allocation()))
"""

from repro.core import (
    LRGP,
    AdaptiveGamma,
    FixedGamma,
    IterationRecord,
    LRGPConfig,
    MultirateLRGP,
    iterations_until_convergence,
    two_stage_optimize,
)
from repro.model import (
    Allocation,
    ConsumerClass,
    CostModel,
    CostModelBuilder,
    Flow,
    Link,
    Node,
    Problem,
    Route,
    build_problem,
    is_feasible,
    total_utility,
    violations,
)
from repro.obs import (
    NULL_TELEMETRY,
    ConvergenceDiagnostics,
    CsvSink,
    DiagnosticsReport,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Telemetry,
    render_diagnostics,
    to_prometheus_text,
)
from repro.utility import (
    LogUtility,
    PowerUtility,
    UtilityFunction,
    rank_log,
    rank_power,
)
from repro.workloads import (
    base_workload,
    generate_workload,
    link_bottleneck_workload,
    micro_workload,
    scale_consumer_nodes,
    scale_flows,
)

__version__ = "1.0.0"

__all__ = [
    "LRGP",
    "NULL_TELEMETRY",
    "AdaptiveGamma",
    "Allocation",
    "ConsumerClass",
    "ConvergenceDiagnostics",
    "CostModel",
    "CostModelBuilder",
    "CsvSink",
    "DiagnosticsReport",
    "FixedGamma",
    "Flow",
    "IterationRecord",
    "JsonlSink",
    "LRGPConfig",
    "Link",
    "LogUtility",
    "MemorySink",
    "MetricsRegistry",
    "MultirateLRGP",
    "Node",
    "PowerUtility",
    "Problem",
    "Route",
    "Telemetry",
    "UtilityFunction",
    "base_workload",
    "build_problem",
    "generate_workload",
    "is_feasible",
    "iterations_until_convergence",
    "link_bottleneck_workload",
    "micro_workload",
    "rank_log",
    "rank_power",
    "render_diagnostics",
    "scale_consumer_nodes",
    "scale_flows",
    "to_prometheus_text",
    "total_utility",
    "two_stage_optimize",
    "violations",
]
