"""Shim for editable installs in environments without the ``wheel`` package.

All real metadata lives in pyproject.toml; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` where wheel is
available) both work.
"""

from setuptools import setup

setup()
