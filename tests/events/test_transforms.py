"""Unit tests for message transformations."""

from repro.events.pubsub import EventMessage
from repro.events.transforms import (
    AggregateTransform,
    ChainTransform,
    EnrichTransform,
    FilterTransform,
    IdentityTransform,
    ProjectTransform,
)


def message(payload, sequence=0):
    return EventMessage(
        flow_id="f", sequence=sequence, published_at=0.0, payload=payload
    )


class TestIdentity:
    def test_passthrough(self):
        msg = message({"a": 1})
        assert IdentityTransform().apply(msg) is msg


class TestFilter:
    def test_passes_and_drops(self):
        transform = FilterTransform(lambda p: p.get("price", 0) > 80)
        assert transform.apply(message({"price": 90})) is not None
        assert transform.apply(message({"price": 70})) is None

    def test_counts(self):
        transform = FilterTransform(lambda p: p["x"] > 0)
        transform.apply(message({"x": 1}))
        transform.apply(message({"x": -1}))
        transform.apply(message({"x": 2}))
        assert (transform.evaluated, transform.passed) == (3, 2)


class TestProject:
    def test_strips_fields(self):
        transform = ProjectTransform(["secret", "internal"])
        result = transform.apply(message({"a": 1, "secret": 2, "internal": 3}))
        assert dict(result.payload) == {"a": 1}

    def test_no_copy_when_nothing_to_strip(self):
        transform = ProjectTransform(["secret"])
        msg = message({"a": 1})
        assert transform.apply(msg) is msg

    def test_metadata_preserved(self):
        transform = ProjectTransform(["b"])
        msg = message({"a": 1, "b": 2}, sequence=42)
        result = transform.apply(msg)
        assert result.sequence == 42
        assert result.flow_id == "f"


class TestEnrich:
    def test_adds_fields(self):
        transform = EnrichTransform(lambda p: {"double": p["x"] * 2})
        result = transform.apply(message({"x": 21}))
        assert dict(result.payload) == {"x": 21, "double": 42}


class TestAggregate:
    def test_emits_every_window(self):
        transform = AggregateTransform(window=3, field="v")
        assert transform.apply(message({"v": 1.0})) is None
        assert transform.apply(message({"v": 2.0})) is None
        result = transform.apply(message({"v": 6.0}))
        assert result is not None
        assert result.payload["v"] == 3.0  # mean
        assert result.payload["aggregated_count"] == 3

    def test_custom_combiner(self):
        transform = AggregateTransform(window=2, field="v", combine=max)
        transform.apply(message({"v": 1.0}))
        result = transform.apply(message({"v": 9.0}))
        assert result.payload["v"] == 9.0

    def test_buffer_resets(self):
        transform = AggregateTransform(window=2, field="v")
        transform.apply(message({"v": 1.0}))
        transform.apply(message({"v": 3.0}))
        assert transform.apply(message({"v": 100.0})) is None

    def test_rejects_bad_window(self):
        import pytest

        with pytest.raises(ValueError):
            AggregateTransform(window=0, field="v")


class TestChain:
    def test_composes_in_order(self):
        chain = ChainTransform(
            [
                FilterTransform(lambda p: p["x"] > 0),
                EnrichTransform(lambda p: {"y": p["x"] + 1}),
                ProjectTransform(["x"]),
            ]
        )
        result = chain.apply(message({"x": 1}))
        assert dict(result.payload) == {"y": 2}

    def test_drop_short_circuits(self):
        hits = []
        chain = ChainTransform(
            [
                FilterTransform(lambda p: False),
                EnrichTransform(lambda p: hits.append(1) or {}),
            ]
        )
        assert chain.apply(message({"x": 1})) is None
        assert hits == []
