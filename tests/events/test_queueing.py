"""Tests for the FIFO queueing model at broker nodes."""

import pytest

from repro.events.simulator import EventInfrastructure
from repro.model.allocation import Allocation
from repro.workloads.micro import micro_workload


def allocation_at_utilization(problem, utilization, capacity=2000.0):
    """usage = F_a r_a + F_b r_b + G n_ca r_a = 51 r_a + 1 for the micro
    workload with ca fully admitted and fb idle at rate 1."""
    rate_a = (utilization * capacity - 1.0) / 51.0
    return Allocation(
        rates={"fa": rate_a, "fb": 1.0},
        populations={"ca": 5, "cb": 0, "cc": 0},
    )


class TestMessageWork:
    def test_work_matches_cost_model(self):
        problem = micro_workload()
        infra = EventInfrastructure(problem)
        infra.enact(
            Allocation(rates={"fa": 5.0, "fb": 1.0},
                       populations={"ca": 3, "cb": 1, "cc": 0})
        )
        broker = infra.brokers["S"]
        # fa: F (1.0) + G (10) * (3 admitted ca + 1 admitted cb).
        assert broker.message_work("fa") == pytest.approx(1.0 + 10.0 * 4)
        # fb: F only (cc unadmitted).
        assert broker.message_work("fb") == pytest.approx(1.0)


class TestQueueingLatency:
    def test_latency_grows_with_utilization(self):
        problem = micro_workload()
        latencies = []
        for utilization in (0.5, 0.95, 1.2):
            infra = EventInfrastructure(problem, queueing=True, poisson=True, seed=3)
            infra.enact(allocation_at_utilization(problem, utilization))
            infra.run_for(30.0)
            latencies.append(infra.mean_delivery_latency())
        assert latencies[0] < latencies[1] < latencies[2]
        assert latencies[2] > 10 * latencies[0]

    def test_underload_latency_near_service_time(self):
        """At low utilization, latency is close to the bare service time
        of one message (work / capacity)."""
        problem = micro_workload()
        infra = EventInfrastructure(problem, queueing=True, seed=0)
        allocation = allocation_at_utilization(problem, 0.2)
        infra.enact(allocation)
        infra.run_for(30.0)
        service_time = infra.brokers["S"].message_work("fa") / 2000.0
        assert infra.mean_delivery_latency() < 4 * service_time

    def test_queueing_off_means_zero_latency(self):
        problem = micro_workload()
        infra = EventInfrastructure(problem, queueing=False)
        infra.enact(allocation_at_utilization(problem, 0.9))
        infra.run_for(10.0)
        assert infra.mean_delivery_latency() == 0.0

    def test_infinite_capacity_nodes_never_queue(self):
        """The producer hub has infinite capacity: messages pass through it
        with no delay even with queueing enabled."""
        problem = micro_workload()
        infra = EventInfrastructure(problem, queueing=True)
        allocation = allocation_at_utilization(problem, 0.3)
        infra.enact(allocation)
        infra.run_for(5.0)
        assert infra.total_deliveries() > 0

    def test_metering_unaffected_by_queueing(self):
        """Queueing delays processing but conserves work: measured resource
        rates still match eq. 5 when the node is stable."""
        problem = micro_workload()
        infra = EventInfrastructure(problem, queueing=True)
        allocation = allocation_at_utilization(problem, 0.7)
        infra.enact(allocation)
        comparisons = infra.measure(duration=20.0, settle=2.0)
        node = next(c for c in comparisons if c.resource == "node:S")
        assert node.relative_error < 0.05
