"""Unit tests for the discrete-event engine."""

import pytest

from repro.events.engine import EventEngine


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_fifo_for_ties(self):
        engine = EventEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("first"))
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run_until(1.0)
        assert order == ["first", "second"]

    def test_run_until_stops_at_boundary(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(2.5, lambda: fired.append(2))
        engine.run_until(2.0)
        assert fired == [1]
        assert engine.now == 2.0
        engine.run_until(3.0)
        assert fired == [1, 2]

    def test_schedule_in_is_relative(self):
        engine = EventEngine()
        times = []
        engine.schedule_in(1.0, lambda: times.append(engine.now))
        engine.run_until(1.0)
        engine.schedule_in(1.0, lambda: times.append(engine.now))
        engine.run_until(5.0)
        assert times == [1.0, 2.0]

    def test_events_can_schedule_events(self):
        engine = EventEngine()
        hits = []

        def recurring():
            hits.append(engine.now)
            if engine.now < 3.0:
                engine.schedule_in(1.0, recurring)

        engine.schedule(1.0, recurring)
        engine.run_until(10.0)
        assert hits == [1.0, 2.0, 3.0]

    def test_processed_counter(self):
        engine = EventEngine()
        for at in (1.0, 2.0, 3.0):
            engine.schedule(at, lambda: None)
        assert engine.run_until(2.0) == 2
        assert engine.processed == 2
        assert engine.pending() == 1


class TestValidation:
    def test_cannot_schedule_in_past(self):
        engine = EventEngine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule_in(-1.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        engine = EventEngine()
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.run_until(1.0)
