"""Integration tests for the pub/sub simulator and resource metering.

The crucial one: the *measured* resource consumption of the discrete-event
broker matches the constraint-equation predictions (eq. 4/5) — this is the
validation the paper performed on Gryphon.
"""

import pytest

from repro.core.lrgp import LRGP
from repro.events.metering import ResourceMeter
from repro.events.pubsub import Consumer, EventMessage, Producer
from repro.events.simulator import EventInfrastructure
from repro.model.allocation import Allocation


class TestProducer:
    def test_deterministic_interval(self):
        producer = Producer("f", rate=10.0)
        assert producer.next_interval() == pytest.approx(0.1)

    def test_zero_rate_pauses(self):
        producer = Producer("f", rate=0.0)
        assert producer.next_interval() is None

    def test_set_rate_validates(self):
        producer = Producer("f", rate=1.0)
        with pytest.raises(ValueError):
            producer.set_rate(-1.0)

    def test_publish_sequences(self):
        producer = Producer("f", rate=1.0)
        first = producer.publish(now=0.0)
        second = producer.publish(now=1.0)
        assert (first.sequence, second.sequence) == (0, 1)
        assert producer.published == 2


class TestConsumer:
    def test_latency_tracking(self):
        consumer = Consumer("c#0", "c")
        consumer.deliver(
            EventMessage(flow_id="f", sequence=0, published_at=1.0), now=1.5
        )
        consumer.deliver(
            EventMessage(flow_id="f", sequence=1, published_at=2.0), now=2.1
        )
        assert consumer.received == 2
        assert consumer.mean_latency == pytest.approx(0.3)

    def test_mean_latency_zero_when_nothing_received(self):
        assert Consumer("c#0", "c").mean_latency == 0.0


class TestMeter:
    def test_rates_are_charge_over_window(self):
        meter = ResourceMeter()
        meter.reset(now=10.0)
        meter.charge_node("S", 30.0)
        meter.charge_link("l", 6.0)
        assert meter.node_rate("S", now=13.0) == pytest.approx(10.0)
        assert meter.link_rate("l", now=13.0) == pytest.approx(2.0)

    def test_zero_elapsed_window(self):
        meter = ResourceMeter()
        meter.charge_node("S", 5.0)
        assert meter.node_rate("S", now=0.0) == 0.0

    def test_rejects_negative_charge(self):
        with pytest.raises(ValueError):
            ResourceMeter().charge_node("S", -1.0)


class TestInfrastructure:
    def test_enact_and_read_back(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem)
        allocation = Allocation(
            rates={"fa": 5.0, "fb": 2.0}, populations={"ca": 3, "cb": 0, "cc": 1}
        )
        infra.enact(allocation)
        read_back = infra.allocation()
        assert read_back.rates == allocation.rates
        assert read_back.populations == allocation.populations

    def test_only_admitted_consumers_receive(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem)
        infra.enact(
            Allocation(rates={"fa": 10.0, "fb": 1.0},
                       populations={"ca": 2, "cb": 0, "cc": 0})
        )
        infra.run_for(2.0)
        admitted = infra.consumers["ca"][:2]
        unadmitted = infra.consumers["ca"][2:] + infra.consumers["cb"]
        assert all(consumer.received > 0 for consumer in admitted)
        assert all(consumer.received == 0 for consumer in unadmitted)

    def test_unadmitting_stops_delivery(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem)
        infra.enact(
            Allocation(rates={"fa": 10.0, "fb": 1.0},
                       populations={"ca": 1, "cb": 0, "cc": 0})
        )
        infra.run_for(1.0)
        received_before = infra.consumers["ca"][0].received
        infra.brokers["S"].set_admitted("ca", 0)
        infra.run_for(1.0)
        assert infra.consumers["ca"][0].received == received_before

    def test_metering_matches_constraint_equations(self, tiny_problem):
        """Eq. 4/5 validation: measured rates within 5% of predictions."""
        infra = EventInfrastructure(tiny_problem)
        infra.enact(
            Allocation(rates={"fa": 20.0, "fb": 10.0},
                       populations={"ca": 3, "cb": 2, "cc": 1})
        )
        comparisons = infra.measure(duration=20.0, settle=1.0)
        assert comparisons, "no resources measured"
        for comparison in comparisons:
            assert comparison.relative_error < 0.05, comparison

    def test_metering_matches_with_poisson_arrivals(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem, poisson=True, seed=5)
        infra.enact(
            Allocation(rates={"fa": 50.0, "fb": 20.0},
                       populations={"ca": 3, "cb": 2, "cc": 1})
        )
        comparisons = infra.measure(duration=60.0, settle=1.0)
        for comparison in comparisons:
            assert comparison.relative_error < 0.15, comparison

    def test_link_latency_delays_delivery(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem, link_latency=0.25)
        infra.enact(
            Allocation(rates={"fa": 10.0, "fb": 1.0},
                       populations={"ca": 1, "cb": 0, "cc": 0})
        )
        infra.run_for(3.0)
        assert infra.mean_delivery_latency() == pytest.approx(0.25)

    def test_lrgp_allocation_runs_cleanly(self, base_problem):
        optimizer = LRGP(base_problem)
        optimizer.run(60)
        infra = EventInfrastructure(base_problem)
        infra.enact(optimizer.allocation())
        comparisons = infra.measure(duration=1.0, settle=0.1)
        node_comparisons = [c for c in comparisons if c.resource.startswith("node:")]
        assert len(node_comparisons) == 3
        for comparison in node_comparisons:
            assert comparison.relative_error < 0.05, comparison

    def test_producer_resumes_after_zero_rate(self, tiny_problem):
        infra = EventInfrastructure(tiny_problem)
        infra.enact(
            Allocation(rates={"fa": 0.0, "fb": 1.0},
                       populations={"ca": 1, "cb": 0, "cc": 0})
        )
        infra.run_for(2.0)
        assert infra.consumers["ca"][0].received == 0
        infra.producers["fa"].set_rate(10.0)
        infra.run_for(3.0)
        assert infra.consumers["ca"][0].received > 0
