"""Integration tests for the autonomic control loop."""

import pytest

from repro.core.enactment import PeriodicEnactment, ThresholdEnactment
from repro.core.lrgp import LRGP, LRGPConfig
from repro.events.autonomic import AutonomicController
from repro.events.simulator import EventInfrastructure
from repro.model.allocation import total_utility
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


def make_controller(problem, policy):
    return AutonomicController(
        optimizer=LRGP(problem, LRGPConfig.adaptive()),
        infrastructure=EventInfrastructure(problem),
        policy=policy,
    )


class TestControlLoop:
    def test_first_tick_enacts(self, problem):
        controller = make_controller(problem, ThresholdEnactment())
        assert controller.tick() is True

    def test_enacted_state_reaches_infrastructure(self, problem):
        controller = make_controller(problem, PeriodicEnactment(period=1))
        controller.run(50)
        live = controller.infrastructure.allocation()
        computed = controller.optimizer.allocation()
        assert live.rates == pytest.approx(computed.rates)
        assert live.populations == computed.populations

    def test_threshold_policy_reduces_enactments(self, problem):
        eager = make_controller(problem, PeriodicEnactment(period=1))
        lazy = make_controller(
            problem,
            ThresholdEnactment(rate_rel_change=0.2, population_abs_change=2),
        )
        eager_count = eager.run(80)
        lazy_count = lazy.run(80)
        assert lazy_count < eager_count

    def test_utility_of_enacted_state_approaches_optimizer(self, problem):
        controller = make_controller(
            problem, ThresholdEnactment(rate_rel_change=0.05)
        )
        controller.run(150)
        live_utility = total_utility(problem, controller.infrastructure.allocation())
        computed_utility = controller.optimizer.utilities[-1]
        assert live_utility == pytest.approx(computed_utility, rel=0.1)

    def test_negative_iterations_rejected(self, problem):
        controller = make_controller(problem, ThresholdEnactment())
        with pytest.raises(ValueError):
            controller.run(-1)

    def test_traffic_flows_during_control(self, problem):
        controller = make_controller(problem, PeriodicEnactment(period=1))
        controller.run(30)
        assert controller.infrastructure.total_deliveries() > 0
