"""Tests for reliable delivery (acks, timeouts, retransmissions)."""

import pytest

from repro.events.reliability import ReliabilityConfig
from repro.events.simulator import EventInfrastructure
from repro.model.allocation import Allocation
from repro.workloads.micro import micro_workload


def run_reliable(config, duration=10.0, rate=20.0, seed=0):
    problem = micro_workload()
    infra = EventInfrastructure(
        problem, seed=seed, reliability={"ca": config}
    )
    infra.enact(
        Allocation(rates={"fa": rate, "fb": 1.0},
                   populations={"ca": 2, "cb": 0, "cc": 0})
    )
    infra.run_for(duration)
    return infra


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(rtt=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ReliabilityConfig(send_cost=-1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(timeout=0.0)

    def test_default_timeout_is_two_rtt(self):
        assert ReliabilityConfig(rtt=0.5).effective_timeout == 1.0
        assert ReliabilityConfig(rtt=0.5, timeout=0.3).effective_timeout == 0.3


class TestLosslessChannel:
    def test_every_message_delivered_and_acked(self):
        infra = run_reliable(ReliabilityConfig(rtt=0.01))
        stats = infra.reliability.stats["ca"]
        published = infra.producers["fa"].published
        # 2 admitted consumers per message; in-flight tail tolerated.
        assert stats.delivered >= 2 * (published - 2)
        assert stats.retransmissions == 0
        assert stats.abandoned == 0
        assert stats.acks_processed >= stats.delivered - 4

    def test_delivery_latency_is_half_rtt(self):
        infra = run_reliable(ReliabilityConfig(rtt=0.2))
        consumer = infra.consumers["ca"][0]
        assert consumer.mean_latency == pytest.approx(0.1, rel=0.05)

    def test_unreliable_classes_unaffected(self):
        problem = micro_workload()
        infra = EventInfrastructure(
            problem, reliability={"ca": ReliabilityConfig(rtt=0.5)}
        )
        infra.enact(
            Allocation(rates={"fa": 10.0, "fb": 10.0},
                       populations={"ca": 1, "cb": 0, "cc": 1})
        )
        infra.run_for(5.0)
        # cc has no reliability config: direct delivery, zero latency.
        assert infra.consumers["cc"][0].mean_latency == 0.0
        assert infra.consumers["ca"][0].mean_latency > 0.0


class TestLossyChannel:
    def test_retransmissions_recover_losses(self):
        config = ReliabilityConfig(rtt=0.01, loss_probability=0.2, max_retries=5)
        infra = run_reliable(config, duration=20.0)
        stats = infra.reliability.stats["ca"]
        published = infra.producers["fa"].published
        assert stats.retransmissions > 0
        # Loss 0.2 with 5 retries: essentially everything arrives.
        assert stats.delivered >= 2 * (published - 2) * 0.99

    def test_duplicates_suppressed(self):
        # High loss makes ack loss (data delivered, ack dropped) common,
        # which forces duplicate data transmissions.
        config = ReliabilityConfig(rtt=0.01, loss_probability=0.4, max_retries=8)
        infra = run_reliable(config, duration=20.0, seed=7)
        stats = infra.reliability.stats["ca"]
        assert stats.duplicates_suppressed > 0
        # Consumers never see a duplicate: received == unique deliveries.
        received = sum(c.received for c in infra.consumers["ca"][:2])
        assert received == stats.delivered

    def test_gives_up_after_max_retries(self):
        config = ReliabilityConfig(rtt=0.01, loss_probability=0.9, max_retries=1)
        infra = run_reliable(config, duration=5.0, rate=5.0, seed=3)
        assert infra.reliability.stats["ca"].abandoned > 0


class TestOverheadAccounting:
    def test_ack_and_send_costs_metered(self):
        problem = micro_workload()
        config = ReliabilityConfig(rtt=0.01, send_cost=2.0, ack_cost=3.0)
        infra = EventInfrastructure(problem, reliability={"ca": config})
        infra.enact(
            Allocation(rates={"fa": 10.0, "fb": 1.0},
                       populations={"ca": 1, "cb": 0, "cc": 0})
        )
        infra.meter.reset(0.0)
        infra.run_for(10.0)
        stats = infra.reliability.stats["ca"]
        charged = infra.meter.node_rate("S", infra.engine.now) * 10.0
        expected_reliability = 2.0 * stats.sends + 3.0 * stats.acks_processed
        # Total node charge = flow cost + consumer cost + reliability cost.
        assert charged > expected_reliability
        base = charged - expected_reliability
        # The base part matches F*count + G*n*count for processed messages.
        processed = infra.brokers["S"].messages_processed
        assert base == pytest.approx(processed * 1.0 + processed * 10.0, rel=0.2)
