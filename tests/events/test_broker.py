"""Unit tests for broker nodes."""

import pytest

from repro.events.broker import Broker
from repro.events.metering import ResourceMeter
from repro.events.pubsub import Consumer, EventMessage
from repro.events.transforms import FilterTransform
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


def make_broker(problem, node_id="S"):
    return Broker(problem, node_id, ResourceMeter())


def msg(flow_id="fa", sequence=0):
    return EventMessage(flow_id=flow_id, sequence=sequence, published_at=0.0,
                        payload={"x": 1})


class TestAttachment:
    def test_attach_wrong_node_rejected(self, problem):
        broker = make_broker(problem, "P")
        with pytest.raises(ValueError):
            broker.attach_class("ca", [Consumer("ca#0", "ca")])

    def test_attach_too_many_consumers_rejected(self, problem):
        broker = make_broker(problem)
        consumers = [Consumer(f"ca#{i}", "ca") for i in range(6)]  # max is 5
        with pytest.raises(ValueError):
            broker.attach_class("ca", consumers)

    def test_set_admitted_bounds(self, problem):
        broker = make_broker(problem)
        broker.attach_class("ca", [Consumer("ca#0", "ca")])
        with pytest.raises(ValueError):
            broker.set_admitted("ca", 2)
        with pytest.raises(ValueError):
            broker.set_admitted("ca", -1)

    def test_admitted_prefix_semantics(self, problem):
        broker = make_broker(problem)
        consumers = [Consumer(f"ca#{i}", "ca") for i in range(3)]
        broker.attach_class("ca", consumers)
        broker.set_admitted("ca", 2)
        broker.process(msg(), now=0.0)
        assert [c.received for c in consumers] == [1, 1, 0]
        # Unadmit from the tail.
        broker.set_admitted("ca", 1)
        broker.process(msg(sequence=1), now=1.0)
        assert [c.received for c in consumers] == [2, 1, 0]


class TestProcessing:
    def test_charges_flow_cost_per_message(self, problem):
        meter = ResourceMeter()
        broker = Broker(problem, "S", meter)
        meter.reset(0.0)
        broker.process(msg(), now=0.0)
        # F = 1.0 for fa at S; no consumers attached.
        assert meter.node_rate("S", now=1.0) == pytest.approx(1.0)

    def test_charges_per_admitted_consumer(self, problem):
        meter = ResourceMeter()
        broker = Broker(problem, "S", meter)
        broker.attach_class("ca", [Consumer(f"ca#{i}", "ca") for i in range(3)])
        broker.set_admitted("ca", 2)
        meter.reset(0.0)
        broker.process(msg(), now=0.0)
        # F (1.0) + G (10.0) * 2 admitted.
        assert meter.node_rate("S", now=1.0) == pytest.approx(21.0)

    def test_filter_cost_charged_even_when_dropped(self, problem):
        """Evaluating a consumer's filter costs CPU whether or not the
        message is delivered (section 1.1)."""
        meter = ResourceMeter()
        broker = Broker(problem, "S", meter)
        broker.attach_class(
            "ca",
            [Consumer("ca#0", "ca")],
            transform=FilterTransform(lambda payload: False),
        )
        broker.set_admitted("ca", 1)
        meter.reset(0.0)
        broker.process(msg(), now=0.0)
        assert meter.node_rate("S", now=1.0) == pytest.approx(11.0)
        assert broker.deliveries == 0

    def test_unrelated_flow_classes_not_charged(self, problem):
        meter = ResourceMeter()
        broker = Broker(problem, "S", meter)
        broker.attach_class("cc", [Consumer("cc#0", "cc")])  # consumes fb
        broker.set_admitted("cc", 1)
        meter.reset(0.0)
        broker.process(msg(flow_id="fa"), now=0.0)
        # Only fa's flow cost; cc consumes fb so no G charge.
        assert meter.node_rate("S", now=1.0) == pytest.approx(1.0)

    def test_forwarding_follows_next_hops(self, problem):
        broker = make_broker(problem, "P")
        broker.add_next_hop("fa", "P->S")
        broker.add_next_hop("fa", "P->S")  # duplicate ignored
        assert broker.process(msg(), now=0.0) == ["P->S"]
        assert broker.process(msg(flow_id="fb"), now=0.0) == []
