"""Unit tests for the overlay/routing substrate."""

import math

import pytest

from repro.model.entities import Link, Node
from repro.model.topology import Overlay, RoutingError, line_overlay, star_overlay


class TestOverlay:
    def test_shortest_path(self):
        overlay = line_overlay(["a", "b", "c"], node_capacity=10.0)
        assert overlay.shortest_path("a", "c") == ["a", "b", "c"]

    def test_no_path_raises(self):
        overlay = line_overlay(["a", "b", "c"], node_capacity=10.0)
        with pytest.raises(RoutingError):
            overlay.shortest_path("c", "a")  # links are unidirectional

    def test_unknown_node_raises(self):
        overlay = line_overlay(["a", "b"], node_capacity=10.0)
        with pytest.raises(RoutingError):
            overlay.shortest_path("a", "zzz")

    def test_link_between(self):
        overlay = line_overlay(["a", "b"], node_capacity=10.0)
        assert overlay.link_between("a", "b") == "a->b"
        with pytest.raises(RoutingError):
            overlay.link_between("b", "a")

    def test_rejects_parallel_links(self):
        nodes = [Node("a"), Node("b")]
        links = [
            Link("l1", tail="a", head="b"),
            Link("l2", tail="a", head="b"),
        ]
        with pytest.raises(RoutingError):
            Overlay(nodes, links)

    def test_rejects_dangling_link(self):
        with pytest.raises(RoutingError):
            Overlay([Node("a")], [Link("l", tail="a", head="ghost")])


class TestDisseminationRoute:
    def test_star_route(self):
        overlay = star_overlay("hub", ["x", "y", "z"], node_capacity=5.0)
        route = overlay.dissemination_route("hub", ["x", "z"])
        assert route.nodes == ("hub", "x", "z")
        assert set(route.links) == {"hub->x", "hub->z"}

    def test_shared_prefix_links_deduplicated(self):
        overlay = line_overlay(["a", "b", "c", "d"], node_capacity=5.0)
        route = overlay.dissemination_route("a", ["c", "d"])
        # a->b and b->c are shared by both target paths but appear once.
        assert route.links == ("a->b", "b->c", "c->d")
        assert route.nodes == ("a", "b", "c", "d")

    def test_source_only_route(self):
        overlay = star_overlay("hub", ["x"], node_capacity=5.0)
        route = overlay.dissemination_route("hub", [])
        assert route.nodes == ("hub",)
        assert route.links == ()


class TestFactories:
    def test_star_overlay_shape(self):
        overlay = star_overlay(
            "hub", ["a", "b"], node_capacity=7.0, link_capacity=3.0,
        )
        assert overlay.nodes["hub"].capacity == math.inf
        assert overlay.nodes["a"].capacity == 7.0
        assert overlay.links["hub->a"].capacity == 3.0

    def test_line_overlay_needs_two_nodes(self):
        with pytest.raises(ValueError):
            line_overlay(["only"], node_capacity=1.0)
