"""Unit tests for the overlay/routing substrate."""

import math

import pytest

from repro.model.entities import Link, Node
from repro.model.topology import (
    Overlay,
    RoutingError,
    fat_tree_overlay,
    leaf_spine_overlay,
    line_overlay,
    star_overlay,
)


def _diamond(first: str, second: str) -> Overlay:
    """Two equal-hop paths ``s -> {first,second} -> t``; insertion order of
    the middle nodes/links is the only thing distinguishing them."""
    nodes = [Node("s"), Node(first), Node(second), Node("t")]
    links = [
        Link(f"s->{first}", tail="s", head=first),
        Link(f"s->{second}", tail="s", head=second),
        Link(f"{first}->t", tail=first, head="t"),
        Link(f"{second}->t", tail=second, head="t"),
    ]
    return Overlay(nodes, links)


class TestOverlay:
    def test_shortest_path(self):
        overlay = line_overlay(["a", "b", "c"], node_capacity=10.0)
        assert overlay.shortest_path("a", "c") == ["a", "b", "c"]

    def test_no_path_raises(self):
        overlay = line_overlay(["a", "b", "c"], node_capacity=10.0)
        with pytest.raises(RoutingError):
            overlay.shortest_path("c", "a")  # links are unidirectional

    def test_unknown_node_raises(self):
        overlay = line_overlay(["a", "b"], node_capacity=10.0)
        with pytest.raises(RoutingError):
            overlay.shortest_path("a", "zzz")

    def test_link_between(self):
        overlay = line_overlay(["a", "b"], node_capacity=10.0)
        assert overlay.link_between("a", "b") == "a->b"
        with pytest.raises(RoutingError):
            overlay.link_between("b", "a")

    def test_rejects_parallel_links(self):
        nodes = [Node("a"), Node("b")]
        links = [
            Link("l1", tail="a", head="b"),
            Link("l2", tail="a", head="b"),
        ]
        with pytest.raises(RoutingError):
            Overlay(nodes, links)

    def test_rejects_dangling_link(self):
        with pytest.raises(RoutingError):
            Overlay([Node("a")], [Link("l", tail="a", head="ghost")])


class TestDisseminationRoute:
    def test_star_route(self):
        overlay = star_overlay("hub", ["x", "y", "z"], node_capacity=5.0)
        route = overlay.dissemination_route("hub", ["x", "z"])
        assert route.nodes == ("hub", "x", "z")
        assert set(route.links) == {"hub->x", "hub->z"}

    def test_shared_prefix_links_deduplicated(self):
        overlay = line_overlay(["a", "b", "c", "d"], node_capacity=5.0)
        route = overlay.dissemination_route("a", ["c", "d"])
        # a->b and b->c are shared by both target paths but appear once.
        assert route.links == ("a->b", "b->c", "c->d")
        assert route.nodes == ("a", "b", "c", "d")

    def test_source_only_route(self):
        overlay = star_overlay("hub", ["x"], node_capacity=5.0)
        route = overlay.dissemination_route("hub", [])
        assert route.nodes == ("hub",)
        assert route.links == ()


class TestMultipathDeterminism:
    """Equal-hop tie-breaks must be insertion-order stable.

    The leaf-spine / fat-tree generators and every workload builder on
    top of them rely on this: BFS tie-breaking picks the *first inserted*
    adjacency, never a hash-order-dependent one, so routes (and therefore
    config hashes and replay captures) are identical across processes.
    """

    def test_equal_hop_tie_breaks_follow_insertion_order(self):
        overlay = _diamond("m1", "m2")
        assert overlay.shortest_path("s", "t") == ["s", "m1", "t"]
        route = overlay.dissemination_route("s", ["t"])
        assert route.nodes == ("s", "m1", "t")
        assert route.links == ("s->m1", "m1->t")

    def test_tie_break_tracks_insertion_not_name(self):
        # Insert the lexicographically *larger* middle node first: the
        # route must follow insertion order, proving the tie-break is not
        # accidental name sorting (nor hash ordering).
        overlay = _diamond("m2", "m1")
        assert overlay.shortest_path("s", "t") == ["s", "m2", "t"]
        assert overlay.dissemination_route("s", ["t"]).nodes == ("s", "m2", "t")

    def test_repeated_routing_is_stable(self):
        overlay = _diamond("m1", "m2")
        routes = {overlay.dissemination_route("s", ["t"]) for _ in range(20)}
        assert len(routes) == 1

    def test_leaf_spine_bfs_collapses_onto_first_spine(self):
        # Documented multipath caveat: naive BFS dissemination through a
        # leaf-spine fabric always rides spine0, which is why the
        # leafspine workload assigns spines round-robin per flow instead.
        overlay = leaf_spine_overlay(spines=3, leaves=4, leaf_capacity=5.0)
        route = overlay.dissemination_route("hub", ["leaf1", "leaf3"])
        assert route.nodes == ("hub", "spine0", "leaf1", "leaf3")
        assert route.links == ("hub->spine0", "spine0->leaf1", "spine0->leaf3")


class TestFabricFactories:
    def test_leaf_spine_shape(self):
        overlay = leaf_spine_overlay(
            spines=3, leaves=4, leaf_capacity=7.0, link_capacity=9.0
        )
        assert len(overlay.nodes) == 1 + 3 + 4
        assert len(overlay.links) == 3 + 3 * 4
        assert overlay.nodes["hub"].capacity == math.inf
        assert overlay.nodes["spine0"].capacity == math.inf
        assert overlay.nodes["leaf2"].capacity == 7.0
        assert overlay.links["spine1->leaf3"].capacity == 9.0
        # Every leaf reachable through every spine (the multipath fabric).
        for spine in range(3):
            for leaf in range(4):
                assert overlay.link_between(f"spine{spine}", f"leaf{leaf}")

    def test_leaf_spine_validates_counts(self):
        with pytest.raises(ValueError):
            leaf_spine_overlay(spines=0, leaves=4, leaf_capacity=1.0)
        with pytest.raises(ValueError):
            leaf_spine_overlay(spines=2, leaves=0, leaf_capacity=1.0)

    def test_fat_tree_shape(self):
        overlay = fat_tree_overlay(k=4, edge_capacity=7.0, link_capacity=9.0)
        half = 2
        cores, pods = half * half, 4
        # hub + cores + per-pod agg/edge.
        assert len(overlay.nodes) == 1 + cores + pods * (half + half)
        # hub->core, core->agg (one per core per pod), agg->edge per pod.
        assert len(overlay.links) == cores + cores * pods + pods * half * half
        assert overlay.nodes["edge2_1"].capacity == 7.0
        assert overlay.nodes["agg1_0"].capacity == math.inf
        # Core c homes onto aggregation switch c // (k/2) in every pod.
        assert overlay.link_between("core0", "agg0_0")
        assert overlay.link_between("core3", "agg2_1")
        with pytest.raises(RoutingError):
            overlay.link_between("core0", "agg0_1")

    def test_fat_tree_requires_even_k(self):
        with pytest.raises(ValueError):
            fat_tree_overlay(k=3, edge_capacity=1.0)
        with pytest.raises(ValueError):
            fat_tree_overlay(k=0, edge_capacity=1.0)


class TestFactories:
    def test_star_overlay_shape(self):
        overlay = star_overlay(
            "hub", ["a", "b"], node_capacity=7.0, link_capacity=3.0,
        )
        assert overlay.nodes["hub"].capacity == math.inf
        assert overlay.nodes["a"].capacity == 7.0
        assert overlay.links["hub->a"].capacity == 3.0

    def test_line_overlay_needs_two_nodes(self):
        with pytest.raises(ValueError):
            line_overlay(["only"], node_capacity=1.0)
