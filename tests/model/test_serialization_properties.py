"""Property tests: serialization round-trips on generated workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lrgp import LRGP
from repro.model.serialization import problem_from_json, problem_to_json
from repro.workloads.generator import GeneratorConfig, generate_workload

SHAPES = ("log", "pow25", "pow50", "pow75")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_workloads_round_trip(seed):
    config = GeneratorConfig(
        flows=1 + seed % 5,
        consumer_nodes=1 + seed % 4,
        consumer_cost_low=5.0,
        consumer_cost_high=25.0,
        shape=SHAPES[seed % len(SHAPES)],
    )
    problem = generate_workload(config, seed=seed)
    restored = problem_from_json(problem_to_json(problem))
    assert restored.flows == problem.flows
    assert restored.classes == problem.classes
    assert restored.routes == problem.routes
    assert dict(restored.costs.consumer_cost) == dict(problem.costs.consumer_cost)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_restored_workloads_optimize_identically(seed):
    problem = generate_workload(GeneratorConfig(flows=3), seed=seed)
    restored = problem_from_json(problem_to_json(problem))
    a = LRGP(problem)
    b = LRGP(restored)
    a.run(25)
    b.run(25)
    assert a.utilities == pytest.approx(b.utilities)
