"""Unit tests for problem construction, validation and the index maps."""


import pytest

from repro.model.costs import CostModel, CostModelBuilder
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import ProblemValidationError, build_problem
from repro.utility.functions import LogUtility


def minimal_parts():
    nodes = [Node("P"), Node("S", capacity=100.0)]
    links = [Link("P->S", tail="P", head="S")]
    flows = [Flow("f", source="P", rate_min=1.0, rate_max=10.0)]
    classes = [ConsumerClass("c", "f", "S", max_consumers=3, utility=LogUtility())]
    routes = {"f": Route(nodes=("P", "S"), links=("P->S",))}
    costs = (
        CostModelBuilder()
        .set_flow_node("S", "f", 1.0)
        .set_consumer("S", "c", 2.0)
        .set_link("P->S", "f", 1.0)
        .build()
    )
    return nodes, links, flows, classes, routes, costs


class TestValidation:
    def test_minimal_problem_builds(self):
        problem = build_problem(*minimal_parts())
        assert problem.describe() == "1 flows, 1 c-nodes, 1 classes, 1 links"

    def test_link_with_unknown_node(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        links = [Link("P->X", tail="P", head="X")]
        with pytest.raises(ProblemValidationError, match="unknown node"):
            build_problem(nodes, links, flows, classes, routes, costs)

    def test_flow_with_unknown_source(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        flows = [Flow("f", source="X")]
        with pytest.raises(ProblemValidationError, match="unknown source"):
            build_problem(nodes, links, flows, classes, routes, costs)

    def test_flow_without_route(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        with pytest.raises(ProblemValidationError, match="no route"):
            build_problem(nodes, links, flows, classes, {}, CostModel())

    def test_route_for_unknown_flow(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        routes = dict(routes)
        routes["ghost"] = Route(nodes=("P",))
        with pytest.raises(ProblemValidationError, match="unknown flow"):
            build_problem(nodes, links, flows, classes, routes, costs)

    def test_route_must_start_at_source(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        routes = {"f": Route(nodes=("S", "P"), links=("P->S",))}
        with pytest.raises(ProblemValidationError, match="must start at its source"):
            build_problem(nodes, links, flows, classes, routes, costs)

    def test_class_consuming_unknown_flow(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        classes = [ConsumerClass("c", "ghost", "S", 3, LogUtility())]
        with pytest.raises(ProblemValidationError, match="unknown flow"):
            build_problem(nodes, links, flows, classes, routes, CostModel())

    def test_class_at_unreached_node(self):
        nodes, links, flows, classes, routes, costs = minimal_parts()
        nodes.append(Node("T", capacity=5.0))
        classes = [ConsumerClass("c", "f", "T", 3, LogUtility())]
        with pytest.raises(ProblemValidationError, match="does not reach"):
            build_problem(nodes, links, flows, classes, routes, CostModel())

    def test_cost_referencing_unknown_pair(self):
        nodes, links, flows, classes, routes, _ = minimal_parts()
        costs = CostModel(consumer_cost={("S", "ghost"): 1.0})
        with pytest.raises(ProblemValidationError, match="consumer cost"):
            build_problem(nodes, links, flows, classes, routes, costs)


class TestIndexMaps:
    def test_base_workload_maps(self, base_problem):
        # flowMap / C_i
        assert base_problem.flow_of_class("c00") == "f0"
        assert set(base_problem.classes_of_flow("f0")) == {
            "c00", "c01", "c02", "c03", "c04", "c05",
        }
        # nodeClasses(b): S1 hosts classes of flows f1, f2, f4, f5.
        s1_classes = base_problem.classes_at_node("S1")
        assert {base_problem.flow_of_class(c) for c in s1_classes} == {
            "f1", "f2", "f4", "f5",
        }
        # attachMap_i(b)
        assert base_problem.classes_of_flow_at_node("f0", "S0") == (
            "c00", "c02", "c04",
        )
        assert base_problem.classes_of_flow_at_node("f0", "S1") == ()
        # nodeMap(b)
        assert set(base_problem.flows_at_node("S0")) == {"f0", "f1", "f3", "f4"}
        # linkMap(l): every flow reaching S2 crosses P->S2.
        assert set(base_problem.flows_on_link("P->S2")) == {"f0", "f2", "f3", "f5"}

    def test_consumer_nodes_sorted(self, base_problem):
        assert base_problem.consumer_nodes() == ("S0", "S1", "S2")

    def test_route_accessor(self, base_problem):
        route = base_problem.route("f1")
        assert route.nodes[0] == "P"
        assert set(route.nodes[1:]) == {"S0", "S1"}

    def test_bottleneck_links_empty_for_base(self, base_problem):
        assert base_problem.bottleneck_links() == ()


class TestProblemSurgery:
    def test_without_flow(self, base_problem):
        reduced = base_problem.without_flow("f5")
        assert "f5" not in reduced.flows
        assert "c18" not in reduced.classes
        assert "c19" not in reduced.classes
        assert "f5" not in reduced.routes
        # Cost entries for the removed flow are pruned too.
        assert all(key[1] != "f5" for key in reduced.costs.flow_node_cost)
        assert all(
            key[1] not in ("c18", "c19") for key in reduced.costs.consumer_cost
        )
        # Other flows untouched.
        assert set(reduced.flows) == {"f0", "f1", "f2", "f3", "f4"}

    def test_without_unknown_flow_raises(self, base_problem):
        with pytest.raises(KeyError):
            base_problem.without_flow("ghost")

    def test_with_costs_swaps_cost_model(self, base_problem):
        pruned = base_problem.costs.pruned(
            dropped_flow_nodes={("S0", "f0")}, dropped_flow_links=set()
        )
        swapped = base_problem.with_costs(pruned)
        assert swapped.costs.flow_node("S0", "f0") == 0.0
        assert swapped.costs.flow_node("S2", "f0") == 3.0
