"""Unit tests for allocation evaluation: objective, usages, feasibility."""

import math

import pytest

from repro.model.allocation import (
    Allocation,
    full_allocation,
    is_feasible,
    link_usage,
    node_flow_usage,
    node_usage,
    total_utility,
    violations,
    zero_allocation,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem(capacity=2000.0)


class TestObjective:
    def test_zero_allocation_zero_utility(self, problem):
        assert total_utility(problem, zero_allocation(problem)) == 0.0

    def test_matches_hand_computation(self, problem):
        allocation = Allocation(
            rates={"fa": 4.0, "fb": 9.0},
            populations={"ca": 2, "cb": 0, "cc": 3},
        )
        expected = 2 * 10.0 * math.log(5.0) + 3 * 5.0 * math.log(10.0)
        assert total_utility(problem, allocation) == pytest.approx(expected)

    def test_missing_entries_default_to_zero(self, problem):
        allocation = Allocation(rates={"fa": 4.0}, populations={"ca": 1})
        assert total_utility(problem, allocation) == pytest.approx(
            10.0 * math.log(5.0)
        )


class TestUsages:
    def test_node_usage_formula(self, problem):
        allocation = Allocation(
            rates={"fa": 10.0, "fb": 20.0},
            populations={"ca": 1, "cb": 2, "cc": 3},
        )
        # F terms: 1*10 + 1*20; G terms: 10*(1+2)*10 + 10*3*20.
        expected = 10.0 + 20.0 + 10.0 * 3 * 10.0 + 10.0 * 3 * 20.0
        assert node_usage(problem, allocation, "S") == pytest.approx(expected)

    def test_node_flow_usage_excludes_consumers(self, problem):
        allocation = Allocation(
            rates={"fa": 10.0, "fb": 20.0},
            populations={"ca": 5, "cb": 5, "cc": 5},
        )
        assert node_flow_usage(problem, allocation, "S") == pytest.approx(30.0)

    def test_link_usage_formula(self, problem):
        allocation = Allocation(rates={"fa": 3.0, "fb": 4.0}, populations={})
        assert link_usage(problem, allocation, "P->S") == pytest.approx(7.0)

    def test_usage_zero_when_nothing_flows(self, problem):
        allocation = Allocation()
        assert node_usage(problem, allocation, "S") == 0.0
        assert link_usage(problem, allocation, "P->S") == 0.0


class TestFeasibility:
    def test_zero_allocation_feasible(self, problem):
        assert is_feasible(problem, zero_allocation(problem))

    def test_full_allocation_infeasible(self, problem):
        assert not is_feasible(problem, full_allocation(problem))

    def test_rate_bound_violations_detected(self, problem):
        low = Allocation(rates={"fa": 0.1, "fb": 5.0}, populations={})
        found = violations(problem, low)
        assert any(v.kind == "rate" and v.subject == "fa" for v in found)
        high = Allocation(rates={"fa": 5.0, "fb": 100.0}, populations={})
        found = violations(problem, high)
        assert any(v.kind == "rate" and v.subject == "fb" for v in found)

    def test_population_violations_detected(self, problem):
        over = Allocation(
            rates={"fa": 5.0, "fb": 5.0}, populations={"ca": 6, "cb": 0, "cc": 0}
        )
        found = violations(problem, over)
        assert any(v.kind == "population" and v.subject == "ca" for v in found)
        negative = Allocation(
            rates={"fa": 5.0, "fb": 5.0}, populations={"ca": -1, "cb": 0, "cc": 0}
        )
        assert any(v.kind == "population" for v in violations(problem, negative))

    def test_node_violation_detected_and_quantified(self, problem):
        # 5 consumers of each class at max rate blows the 2000 budget.
        allocation = Allocation(
            rates={"fa": 20.0, "fb": 20.0},
            populations={"ca": 5, "cb": 5, "cc": 5},
        )
        found = violations(problem, allocation)
        node_violations = [v for v in found if v.kind == "node"]
        assert len(node_violations) == 1
        expected_usage = node_usage(problem, allocation, "S")
        assert node_violations[0].amount == pytest.approx(expected_usage - 2000.0)

    def test_violation_str_is_informative(self, problem):
        allocation = full_allocation(problem)
        message = str(violations(problem, allocation)[0])
        assert "constraint violated" in message

    def test_tolerance_absorbs_float_noise(self, problem):
        # Exactly at capacity, plus float noise below rtol, is feasible.
        allocation = Allocation(
            rates={"fa": 20.0, "fb": 1.0},
            populations={"ca": 4, "cb": 0, "cc": 0},
        )
        usage = node_usage(problem, allocation, "S")
        assert usage <= 2000.0
        assert is_feasible(problem, allocation)

    def test_lrgp_output_feasible(self, base_problem, converged_lrgp):
        assert is_feasible(base_problem, converged_lrgp.allocation())


class TestAllocationHelpers:
    def test_copy_is_deep_enough(self, problem):
        original = zero_allocation(problem)
        clone = original.copy()
        clone.rates["fa"] = 99.0
        clone.populations["ca"] = 99
        assert original.rates["fa"] == 1.0
        assert original.populations["ca"] == 0

    def test_zero_allocation_uses_rate_min(self, problem):
        allocation = zero_allocation(problem)
        assert allocation.rates == {"fa": 1.0, "fb": 1.0}
        assert set(allocation.populations.values()) == {0}

    def test_full_allocation_uses_maxima(self, problem):
        allocation = full_allocation(problem)
        assert allocation.rates == {"fa": 20.0, "fb": 20.0}
        assert allocation.populations == {"ca": 5, "cb": 5, "cc": 5}
