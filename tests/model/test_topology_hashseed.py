"""Dissemination routes must not depend on ``PYTHONHASHSEED``.

The fabric workloads (leaf-spine / fat-tree) feed routes into config
hashes, sweep cache keys, and replay captures, so route construction on a
*multipath* topology — where several equal-hop paths exist and only the
tie-break picks one — must be byte-identical across interpreter hash
seeds.  Mirrors ``tests/sweep/test_hashseed.py``: the same route surface
is computed in fresh interpreters under different ``PYTHONHASHSEED``
values and compared as raw bytes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]

#: Runs in a fresh interpreter: every multipath route surface on stdout.
_SCRIPT = """
import json
import sys

from repro.model.entities import Link, Node
from repro.model.topology import Overlay, fat_tree_overlay, leaf_spine_overlay
from repro.workloads import fat_tree_workload, leaf_spine_workload

diamond = Overlay(
    [Node("s"), Node("m1"), Node("m2"), Node("t")],
    [
        Link("s->m1", tail="s", head="m1"),
        Link("s->m2", tail="s", head="m2"),
        Link("m1->t", tail="m1", head="t"),
        Link("m2->t", tail="m2", head="t"),
    ],
)
fabric = leaf_spine_overlay(spines=3, leaves=6, leaf_capacity=5.0)
tree = fat_tree_overlay(k=4, edge_capacity=5.0)

def route_payload(route):
    return {"nodes": list(route.nodes), "links": list(route.links)}

ls = leaf_spine_workload(spines=3, leaves=6, flows=6)
ft = fat_tree_workload(k=4, flows=4)

payload = {
    "diamond": route_payload(diamond.dissemination_route("s", ["t"])),
    "fabric": route_payload(
        fabric.dissemination_route("hub", ["leaf5", "leaf0", "leaf3"])
    ),
    "fat_tree": route_payload(
        tree.dissemination_route("core1", ["edge3_1", "edge0_0"])
    ),
    "leafspine_routes": {
        fid: route_payload(ls.routes[fid]) for fid in sorted(ls.routes)
    },
    "fattree_routes": {
        fid: route_payload(ft.routes[fid]) for fid in sorted(ft.routes)
    },
}
json.dump(payload, sys.stdout, sort_keys=True)
"""


def _run_leg(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"PYTHONHASHSEED={hash_seed} leg failed:\n{completed.stderr}"
    )
    return completed.stdout


class TestRouteHashSeedIndependence:
    @pytest.fixture(scope="class")
    def legs(self):
        return {seed: _run_leg(seed) for seed in ("0", "1", "12345")}

    def test_each_leg_produces_routes(self, legs):
        for seed, output in legs.items():
            payload = json.loads(output)
            assert payload["diamond"]["nodes"], f"seed {seed}"
            assert len(payload["leafspine_routes"]) == 6, f"seed {seed}"

    def test_routes_are_byte_identical_across_hash_seeds(self, legs):
        outputs = set(legs.values())
        assert len(outputs) == 1, (
            "dissemination routes depend on PYTHONHASHSEED; an unordered "
            "set/dict is leaking into overlay construction or routing"
        )

    def test_tie_break_is_pinned_not_just_stable(self, legs):
        # Byte-identity alone could mask 'stably wrong'; pin the actual
        # insertion-order winner of the diamond's two equal-hop paths.
        payload = json.loads(next(iter(legs.values())))
        assert payload["diamond"]["nodes"] == ["s", "m1", "t"]
        assert payload["fabric"]["links"][0] == "hub->spine0"
