"""Unit tests for the cost model."""

import pytest

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
    CostModel,
    CostModelBuilder,
)


class TestCostModel:
    def test_missing_entries_are_zero(self):
        costs = CostModel()
        assert costs.link("l", "f") == 0.0
        assert costs.flow_node("n", "f") == 0.0
        assert costs.consumer("n", "c") == 0.0

    def test_lookup(self):
        costs = CostModel(
            link_cost={("l", "f"): 1.5},
            flow_node_cost={("n", "f"): 3.0},
            consumer_cost={("n", "c"): 19.0},
        )
        assert costs.link("l", "f") == 1.5
        assert costs.flow_node("n", "f") == 3.0
        assert costs.consumer("n", "c") == 19.0

    def test_rejects_negative_coefficient(self):
        with pytest.raises(ValueError):
            CostModel(link_cost={("l", "f"): -1.0})
        with pytest.raises(ValueError):
            CostModel(flow_node_cost={("n", "f"): float("nan")})
        with pytest.raises(ValueError):
            CostModel(consumer_cost={("n", "c"): float("inf")})

    def test_pruned_drops_requested_entries(self):
        costs = CostModel(
            link_cost={("l1", "f"): 1.0, ("l2", "f"): 1.0},
            flow_node_cost={("n1", "f"): 3.0, ("n2", "f"): 3.0},
            consumer_cost={("n1", "c"): 19.0},
        )
        pruned = costs.pruned(
            dropped_flow_nodes={("n2", "f")}, dropped_flow_links={("l2", "f")}
        )
        assert pruned.flow_node("n2", "f") == 0.0
        assert pruned.flow_node("n1", "f") == 3.0
        assert pruned.link("l2", "f") == 0.0
        assert pruned.link("l1", "f") == 1.0
        assert pruned.consumer("n1", "c") == 19.0  # consumer costs untouched

    def test_gryphon_constants_match_paper(self):
        assert GRYPHON_FLOW_NODE_COST == 3.0
        assert GRYPHON_CONSUMER_COST == 19.0
        assert GRYPHON_NODE_CAPACITY == 9.0e5


class TestCostModelBuilder:
    def test_builds_and_freezes(self):
        costs = (
            CostModelBuilder()
            .set_link("l", "f", 2.0)
            .set_flow_node("n", "f", 3.0)
            .set_consumer("n", "c", 19.0)
            .build()
        )
        assert costs.link("l", "f") == 2.0
        assert costs.flow_node("n", "f") == 3.0
        assert costs.consumer("n", "c") == 19.0

    def test_rejects_bad_values_eagerly(self):
        with pytest.raises(ValueError):
            CostModelBuilder().set_link("l", "f", -1.0)

    def test_later_set_overrides(self):
        costs = (
            CostModelBuilder()
            .set_consumer("n", "c", 1.0)
            .set_consumer("n", "c", 2.0)
            .build()
        )
        assert costs.consumer("n", "c") == 2.0
