"""Tests for allocation quality metrics."""

import pytest

from repro.model.allocation import Allocation
from repro.model.metrics import (
    admission_fairness,
    class_service,
    jain_index,
    summarize,
    utility_concentration,
)
from repro.workloads.micro import micro_workload


@pytest.fixture()
def problem():
    return micro_workload()


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair_by_convention(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_bounds(self):
        values = [5.0, 1.0, 0.2, 3.3]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestClassService:
    def test_report_contents(self, problem):
        allocation = Allocation(
            rates={"fa": 4.0, "fb": 2.0}, populations={"ca": 2, "cb": 0, "cc": 5}
        )
        report = {s.class_id: s for s in class_service(problem, allocation)}
        assert report["ca"].admitted == 2
        assert report["ca"].admitted_fraction == pytest.approx(0.4)
        assert report["ca"].rate == 4.0
        assert report["ca"].utility == pytest.approx(
            2 * problem.classes["ca"].utility.value(4.0)
        )
        assert report["cb"].utility == 0.0

    def test_zero_demand_class_counts_as_served(self, problem):
        # connected == 0 -> fraction 1 by convention (nothing denied).
        from repro.model.entities import ConsumerClass
        from repro.model.problem import build_problem
        from repro.utility.functions import LogUtility

        classes = list(problem.classes.values()) + [
            ConsumerClass("cz", "fa", "S", max_consumers=0, utility=LogUtility())
        ]
        extended = build_problem(
            nodes=problem.nodes.values(),
            links=problem.links.values(),
            flows=problem.flows.values(),
            classes=classes,
            routes=problem.routes,
            costs=problem.costs,
        )
        allocation = Allocation(rates={"fa": 2.0, "fb": 2.0}, populations={})
        report = {s.class_id: s for s in class_service(extended, allocation)}
        assert report["cz"].admitted_fraction == 1.0


class TestAggregateMetrics:
    def test_fair_allocation_scores_one(self, problem):
        allocation = Allocation(
            rates={"fa": 2.0, "fb": 2.0},
            populations={"ca": 1, "cb": 1, "cc": 1},  # 20% of each class
        )
        assert admission_fairness(problem, allocation) == pytest.approx(1.0)

    def test_unfair_allocation_scores_low(self, problem):
        allocation = Allocation(
            rates={"fa": 2.0, "fb": 2.0},
            populations={"ca": 5, "cb": 0, "cc": 0},
        )
        assert admission_fairness(problem, allocation) < 0.5

    def test_concentration_range(self, problem):
        allocation = Allocation(
            rates={"fa": 2.0, "fb": 2.0},
            populations={"ca": 5, "cb": 1, "cc": 1},
        )
        concentration = utility_concentration(problem, allocation)
        assert 0.0 < concentration <= 1.0

    def test_summary_is_consistent(self, problem):
        allocation = Allocation(
            rates={"fa": 2.0, "fb": 2.0},
            populations={"ca": 2, "cb": 1, "cc": 3},
        )
        summary = summarize(problem, allocation)
        assert summary.admitted == 6
        assert summary.connected == 15
        assert summary.admitted_fraction == pytest.approx(0.4)
        assert summary.utility > 0.0
        assert 0.0 < summary.fairness <= 1.0
