"""Round-trip tests for problem/allocation serialization."""

import math

import pytest

from repro.core.lrgp import LRGP
from repro.model.serialization import (
    SerializationError,
    allocation_from_json,
    allocation_to_json,
    problem_from_dict,
    problem_from_json,
    problem_to_dict,
    problem_to_json,
    utility_from_dict,
    utility_to_dict,
)
from repro.utility.functions import (
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
    ScaledUtility,
)
from repro.workloads.base import base_workload
from repro.workloads.scenarios import trade_data_scenario
from tests.conftest import make_tiny_problem


def assert_problems_equal(a, b):
    assert set(a.nodes) == set(b.nodes)
    for node_id in a.nodes:
        assert a.nodes[node_id] == b.nodes[node_id]
    assert a.links == b.links
    assert a.flows == b.flows
    assert a.classes == b.classes
    assert a.routes == b.routes
    assert dict(a.costs.link_cost) == dict(b.costs.link_cost)
    assert dict(a.costs.flow_node_cost) == dict(b.costs.flow_node_cost)
    assert dict(a.costs.consumer_cost) == dict(b.costs.consumer_cost)


class TestUtilityRoundTrip:
    @pytest.mark.parametrize(
        "utility",
        [
            LogUtility(scale=3.0, offset=2.0),
            PowerUtility(scale=7.0, exponent=0.25),
            ExponentialSaturationUtility(scale=10.0, knee=50.0),
            ScaledUtility(base=PowerUtility(scale=1.0, exponent=0.5), factor=4.0),
        ],
    )
    def test_round_trip(self, utility):
        assert utility_from_dict(utility_to_dict(utility)) == utility

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            utility_from_dict({"type": "cubic"})
        with pytest.raises(SerializationError):
            utility_from_dict({"no": "type"})


class TestProblemRoundTrip:
    @pytest.mark.parametrize(
        "build",
        [make_tiny_problem, base_workload, lambda: trade_data_scenario().problem],
        ids=["tiny", "base", "trade-data"],
    )
    def test_round_trip(self, build):
        problem = build()
        assert_problems_equal(problem, problem_from_json(problem_to_json(problem)))

    def test_infinity_capacity_survives(self):
        problem = base_workload()
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.nodes["P"].capacity == math.inf
        assert restored.flows["f0"].rate_max == 1000.0

    def test_restored_problem_optimizes_identically(self):
        problem = base_workload()
        restored = problem_from_json(problem_to_json(problem))
        a = LRGP(problem)
        b = LRGP(restored)
        a.run(40)
        b.run(40)
        assert a.utilities == pytest.approx(b.utilities)

    def test_version_checked(self):
        data = problem_to_dict(make_tiny_problem())
        data["version"] = 99
        with pytest.raises(SerializationError):
            problem_from_dict(data)
        with pytest.raises(SerializationError):
            problem_from_dict({})

    def test_malformed_record_rejected(self):
        data = problem_to_dict(make_tiny_problem())
        del data["flows"][0]["source"]
        with pytest.raises(SerializationError):
            problem_from_dict(data)


class TestAllocationRoundTrip:
    def test_round_trip(self):
        problem = base_workload()
        optimizer = LRGP(problem)
        optimizer.run(30)
        allocation = optimizer.allocation()
        restored = allocation_from_json(allocation_to_json(allocation))
        assert restored.rates == pytest.approx(allocation.rates)
        assert restored.populations == allocation.populations

    def test_bad_version(self):
        with pytest.raises(SerializationError):
            allocation_from_json('{"version": 9, "rates": {}, "populations": {}}')
