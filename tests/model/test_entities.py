"""Unit tests for the entity value objects."""

import math

import pytest

from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.utility.functions import LogUtility


class TestNode:
    def test_defaults_to_infinite_capacity(self):
        assert Node("a").capacity == math.inf

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Node("")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Node("a", capacity=0.0)
        with pytest.raises(ValueError):
            Node("a", capacity=-5.0)

    def test_rejects_nan_capacity(self):
        with pytest.raises(ValueError):
            Node("a", capacity=float("nan"))


class TestLink:
    def test_valid_link(self):
        link = Link("l", tail="a", head="b", capacity=10.0)
        assert (link.tail, link.head) == ("a", "b")

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link("l", tail="a", head="a")

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            Link("", tail="a", head="b")


class TestFlow:
    def test_clamp(self):
        flow = Flow("f", source="s", rate_min=10.0, rate_max=100.0)
        assert flow.clamp(5.0) == 10.0
        assert flow.clamp(50.0) == 50.0
        assert flow.clamp(500.0) == 100.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Flow("f", source="s", rate_min=10.0, rate_max=5.0)

    def test_rejects_negative_min(self):
        with pytest.raises(ValueError):
            Flow("f", source="s", rate_min=-1.0)

    def test_zero_width_bounds_allowed(self):
        flow = Flow("f", source="s", rate_min=7.0, rate_max=7.0)
        assert flow.clamp(100.0) == 7.0


class TestConsumerClass:
    def test_valid(self):
        cls = ConsumerClass("c", "f", "n", max_consumers=10, utility=LogUtility())
        assert cls.max_consumers == 10

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            ConsumerClass("c", "f", "n", max_consumers=-1, utility=LogUtility())

    def test_zero_population_allowed(self):
        cls = ConsumerClass("c", "f", "n", max_consumers=0, utility=LogUtility())
        assert cls.max_consumers == 0


class TestRoute:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            Route(nodes=())

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ValueError):
            Route(nodes=("a", "b", "a"))

    def test_rejects_duplicate_links(self):
        with pytest.raises(ValueError):
            Route(nodes=("a", "b"), links=("l", "l"))

    def test_single_node_route(self):
        route = Route(nodes=("a",))
        assert route.links == ()
