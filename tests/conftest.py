"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.problem import Problem
from repro.workloads.base import base_workload
from repro.workloads.micro import micro_workload


@pytest.fixture(scope="session")
def base_problem() -> Problem:
    """The paper's Table 1 workload (log utility)."""
    return base_workload()


@pytest.fixture(scope="session")
def converged_lrgp(base_problem: Problem) -> LRGP:
    """LRGP run for 250 iterations on the base workload (read-only!)."""
    optimizer = LRGP(base_problem, LRGPConfig.adaptive())
    optimizer.run(250)
    return optimizer


#: The library's micro workload doubles as the suite's tiny instance.
make_tiny_problem = micro_workload


@pytest.fixture()
def tiny_problem() -> Problem:
    return make_tiny_problem()
