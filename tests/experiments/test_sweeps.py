"""Tests for the sweep harness and gamma-sensitivity study."""

import pytest

from repro.experiments.sweeps import SweepResult, gamma_sensitivity, sweep
from repro.workloads.micro import micro_workload


class TestSweepHarness:
    def test_collects_points_in_order(self):
        result = sweep("s", "x", [1, 2, 3], lambda x: {"y": float(x * x)})
        assert [p.value for p in result.points] == [1, 2, 3]
        assert [p.outcomes["y"] for p in result.points] == [1.0, 4.0, 9.0]

    def test_table_rendering(self):
        result = sweep("My sweep", "x", [1, 2], lambda x: {"y": float(x)})
        table = result.table()
        assert table.columns == ("x", "y")
        assert len(table.rows) == 2

    def test_mismatched_outcome_keys_rejected(self):
        def run(x):
            return {"a": 1.0} if x == 1 else {"b": 2.0}

        with pytest.raises(ValueError, match="expected"):
            sweep("s", "x", [1, 2], run)

    def test_empty_sweep_table_rejected(self):
        with pytest.raises(ValueError):
            SweepResult(name="s", knob="x", points=()).table()


class TestGammaSensitivity:
    def test_on_micro_workload(self):
        result = gamma_sensitivity(
            gammas=(0.1, 0.01), iterations=200, problem=micro_workload()
        )
        outcomes = {p.value: p.outcomes for p in result.points}
        assert set(outcomes) == {0.1, 0.01}
        for values in outcomes.values():
            assert values["final utility"] > 0.0
