"""Tests for the table experiments and ablations (reduced budgets)."""

import pytest

from repro.experiments.ablations import (
    ablation_admission,
    ablation_asynchrony,
    ablation_node_price,
    fifo_admission,
    make_random_admission,
    overload_only_admission,
    proportional_admission,
)
from repro.experiments.tables import (
    compare_lrgp_and_annealing,
    table1_workload,
)
from repro.model.allocation import Allocation, node_usage
from repro.workloads.base import base_workload
from tests.conftest import make_tiny_problem


class TestTable1:
    def test_renders_ten_rows(self):
        table = table1_workload()
        assert len(table.rows) == 10
        assert table.columns == ("class", "flow", "nodes", "n^max", "rank")
        assert table.rows[-1] == ("18,19", "5", "S1,S2", "1500", "100")


class TestComparison:
    def test_lrgp_beats_sa_on_base_workload(self):
        row = compare_lrgp_and_annealing(
            "base", base_workload(), sa_steps=60_000, lrgp_iterations=120
        )
        assert row.lrgp_utility > row.sa.best_utility
        assert row.utility_increase > 0.0
        assert row.lrgp_iterations is not None


class TestAdmissionStrategies:
    """The alternative strategies used by ablation B must themselves honor
    the node constraint."""

    @pytest.mark.parametrize(
        "strategy",
        [fifo_admission, proportional_admission, overload_only_admission,
         make_random_admission(3)],
    )
    def test_feasible(self, strategy):
        problem = make_tiny_problem()
        rates = {"fa": 10.0, "fb": 15.0}
        result = strategy(problem, "S", rates)
        allocation = Allocation(rates=dict(rates), populations=result.populations)
        capacity = problem.nodes["S"].capacity
        assert node_usage(problem, allocation, "S") <= capacity * (1 + 1e-9)
        assert result.used <= capacity * (1 + 1e-9)

    def test_proportional_gives_equal_fractions(self):
        problem = make_tiny_problem()
        rates = {"fa": 10.0, "fb": 10.0}
        result = proportional_admission(problem, "S", rates)
        fractions = {
            class_id: result.populations[class_id]
            / problem.classes[class_id].max_consumers
            for class_id in problem.classes
        }
        values = list(fractions.values())
        assert max(values) - min(values) <= 0.21  # integral rounding slack

    def test_overload_only_reports_zero_bc(self):
        problem = make_tiny_problem()
        result = overload_only_admission(problem, "S", {"fa": 10.0, "fb": 10.0})
        assert result.best_unsatisfied_ratio == 0.0


class TestAblations:
    def test_node_price_ablation_ranks_paper_design_first(self):
        table = ablation_node_price(iterations=150)
        utilities = [float(row[1].replace(",", "")) for row in table.rows]
        # The damped/adaptive variant (row 0) beats raw BC and overload-only.
        assert utilities[0] > utilities[2]
        assert utilities[0] > utilities[3]

    def test_admission_ablation_ranks_greedy_first(self):
        table = ablation_admission(iterations=150)
        utilities = [float(row[1].replace(",", "")) for row in table.rows]
        assert utilities[0] == max(utilities)
        # Value-blind admission costs real utility, not epsilon.
        assert utilities[0] > 1.2 * max(utilities[1:])

    def test_asynchrony_ablation_stays_close_to_sync(self):
        table = ablation_asynchrony(duration=120.0)
        utilities = [float(row[1].replace(",", "")) for row in table.rows]
        sync = utilities[0]
        for value in utilities[1:]:
            assert value == pytest.approx(sync, rel=0.05)
