"""Tests that the figure experiments reproduce the paper's *shapes*.

These run the real experiments at reduced iteration counts, asserting the
qualitative claims each figure makes rather than pixel values.
"""

import statistics

import pytest

from repro.core.convergence import iterations_until_convergence
from repro.experiments.figures import (
    figure1_damping,
    figure2_adaptive_gamma,
    figure3_recovery,
    figure4_power_utility,
)


def tail_spread(series, tail=40):
    values = series.ys[-tail:]
    return statistics.pstdev(values) / statistics.mean(values)


@pytest.fixture(scope="module")
def fig1():
    return figure1_damping(iterations=200)


@pytest.fixture(scope="module")
def fig2():
    return figure2_adaptive_gamma(iterations=200)


class TestFigure1:
    def test_three_series(self, fig1):
        assert [series.label for series in fig1.series] == [
            "gamma=1", "gamma=0.1", "gamma=0.01",
        ]

    def test_no_damping_oscillates(self, fig1):
        """gamma=1 keeps oscillating with large amplitude."""
        undamped = tail_spread(fig1.series[0])
        damped = tail_spread(fig1.series[1])
        assert undamped > 5 * damped

    def test_damped_runs_stabilize(self, fig1):
        for series in fig1.series[1:]:
            assert tail_spread(series) < 0.01

    def test_small_gamma_converges_slower(self, fig1):
        fast = iterations_until_convergence(list(fig1.series[1].ys), rel_amplitude=5e-3)
        slow = iterations_until_convergence(list(fig1.series[2].ys), rel_amplitude=5e-3)
        assert fast is not None and slow is not None
        assert slow > fast

    def test_gamma_01_stabilizes_within_tens_of_iterations(self, fig1):
        converged = iterations_until_convergence(
            list(fig1.series[1].ys), rel_amplitude=5e-3
        )
        assert converged is not None and converged < 40


class TestFigure2:
    def test_adaptive_converges_at_least_as_fast_as_fixed(self, fig2):
        adaptive = iterations_until_convergence(list(fig2.series[0].ys))
        fixed_001 = iterations_until_convergence(list(fig2.series[2].ys))
        assert adaptive is not None
        # gamma=0.01 needs ~100 iterations (figure 1); adaptive needs ~tens.
        assert fixed_001 is None or adaptive <= fixed_001

    def test_adaptive_small_fluctuations(self, fig2):
        assert tail_spread(fig2.series[0]) < 0.005

    def test_all_series_reach_same_plateau(self, fig2):
        finals = [series.ys[-1] for series in fig2.series]
        assert max(finals) / min(finals) < 1.02


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig3(self):
        return figure3_recovery()

    def test_series_cover_window(self, fig3):
        for series in fig3.series:
            assert series.xs[0] == 100.0
            assert series.xs[-1] == 200.0

    def test_utility_drops_at_removal(self, fig3):
        adaptive = fig3.series[0]
        before = adaptive.ys[45]  # iteration 145
        after = adaptive.ys[55]   # iteration 155
        assert after < before * 0.8

    def test_adaptive_recovers_faster_than_fixed(self, fig3):
        """The paper's claim: with adaptive gamma the utility recovers much
        quicker after the removal.  At the end of the plotted window the
        adaptive run is ahead of fixed gamma and within ~1% of the
        post-removal plateau (~529k, measured by running to iteration 400)."""
        adaptive_final = fig3.series[0].ys[-1]
        fixed_final = fig3.series[1].ys[-1]
        assert adaptive_final > fixed_final
        assert adaptive_final == pytest.approx(529_400, rel=0.015)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            figure3_recovery(remove_at=50, window=(100, 200))


class TestFigure4:
    def test_power_utility_trajectory_stabilizes(self):
        figure = figure4_power_utility(iterations=150)
        series = figure.series[0]
        assert tail_spread(series) < 0.02
        # Table 3's pow75 plateau is ~4.7M.
        assert series.ys[-1] == pytest.approx(4_735_044, rel=0.05)
