"""Tests for the extension experiments (reduced budgets).

The benchmark suite runs these at full budget; here we verify structure
and the headline invariants cheaply so plain ``pytest tests/`` covers the
experiment code paths.
"""

import pytest

from repro.experiments.extensions import (
    extension_capacity_churn,
    extension_communication,
    extension_coordinate,
    extension_link_pricing,
    extension_multirate,
    extension_queueing_latency,
    extension_two_stage,
)


class TestLinkPricing:
    def test_price_matches_analytic(self):
        table = extension_link_pricing(capacities=(100.0,), iterations=500)
        row = table.rows[0]
        measured = float(row[3].replace(",", ""))
        analytic = float(row[4].replace(",", ""))
        assert measured == pytest.approx(analytic, rel=0.03)


class TestMultirate:
    def test_structure_and_dominance(self):
        table = extension_multirate(iterations=120)
        assert len(table.rows) == 3
        for row in table.rows:
            single = float(row[1].replace(",", ""))
            multi = float(row[2].replace(",", ""))
            assert multi >= 0.99 * single


class TestTwoStage:
    def test_structure_and_gains(self):
        table = extension_two_stage(iterations=120)
        gains = [float(row[4].rstrip("%")) for row in table.rows]
        assert gains[0] == pytest.approx(0.0, abs=0.2)  # healthy: no pruning
        assert gains[1] > 0.5  # starved: pruning pays


class TestQueueing:
    def test_latency_monotone(self):
        table = extension_queueing_latency(
            utilizations=(0.5, 1.1), duration=20.0
        )
        latencies = [float(row[2]) for row in table.rows]
        assert latencies[1] > 3 * latencies[0]


class TestChurn:
    def test_figure_has_events(self):
        figure = extension_capacity_churn(total_iterations=250)
        assert "S1 capacity halved" in figure.notes
        assert "flow f5 leaves" in figure.notes
        assert len(figure.series[0].ys) == 250


class TestCoordinate:
    def test_fixpoint_certificate(self):
        table = extension_coordinate(iterations=150)
        base_row = table.rows[0]
        lrgp = float(base_row[1].replace(",", ""))
        seeded = float(base_row[4].replace(",", ""))
        assert seeded == pytest.approx(lrgp, rel=0.005)


class TestCommunication:
    def test_three_messages_per_incidence(self):
        table = extension_communication(rounds=5)
        for row in table.rows:
            assert float(row[4]) == pytest.approx(3.0, abs=0.01)
