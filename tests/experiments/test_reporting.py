"""Unit tests for result rendering."""

import pytest

from repro.experiments.reporting import (
    FigureResult,
    Series,
    TableResult,
    format_number,
    render_ascii_chart,
    render_series_rows,
    render_table,
)


def sample_figure():
    return FigureResult(
        figure_id="Figure X",
        title="A test figure",
        x_label="iteration",
        y_label="utility",
        series=(
            Series("a", xs=(1.0, 2.0, 3.0), ys=(10.0, 20.0, 15.0)),
            Series("b", xs=(1.0, 2.0, 3.0), ys=(5.0, 5.0, 25.0)),
        ),
        notes="hello",
    )


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("bad", xs=(1.0,), ys=(1.0, 2.0))


class TestTableResult:
    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TableResult(
                table_id="T", title="t", columns=("a", "b"), rows=(("1",),)
            )


class TestFormatNumber:
    def test_thousands_separator(self):
        assert format_number(1328821.4) == "1,328,821"
        assert format_number(1328821.44, decimals=1) == "1,328,821.4"


class TestRenderTable:
    def test_contains_all_cells_aligned(self):
        table = TableResult(
            table_id="Table 9",
            title="demo",
            columns=("name", "value"),
            rows=(("alpha", "1"), ("b", "22,000")),
            notes="a note",
        )
        text = render_table(table)
        assert "Table 9: demo" in text
        assert "alpha" in text and "22,000" in text
        assert "note: a note" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:4]}) == 1  # aligned header


class TestRenderAsciiChart:
    def test_contains_legend_and_ranges(self):
        text = render_ascii_chart(sample_figure(), width=40, height=8)
        assert "* = a" in text
        assert "o = b" in text
        assert "[5 .. 25]" in text
        assert "note: hello" in text

    def test_empty_figure(self):
        figure = FigureResult(
            figure_id="F", title="empty", x_label="x", y_label="y", series=()
        )
        assert "no data" in render_ascii_chart(figure)


class TestRenderSeriesRows:
    def test_samples_every_n(self):
        figure = sample_figure()
        text = render_series_rows(figure, every=2)
        lines = text.splitlines()
        # Header + separator + rows for x=1 and x=3.
        assert any(line.strip().startswith("1") for line in lines)
        assert any(line.strip().startswith("3") for line in lines)
        assert not any(line.strip().startswith("2") for line in lines[3:])
