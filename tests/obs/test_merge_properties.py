"""Property tests: farm-wide telemetry merge is a lawful aggregation.

Hypothesis generates arbitrary registries (counters / gauges /
histograms over a small shared name pool, so collisions actually occur)
and checks the algebra the sweep farm relies on:

* ``MetricsSnapshot.merge`` is associative, and commutative whenever the
  gauge names are disjoint (gauges are last-writer-wins by design, so
  shared gauges are the one lawful asymmetry);
* merging N per-cell snapshots one by one equals observing everything in
  one combined registry — the farm aggregate is not an approximation;
* ``MetricsRegistry.merge_snapshot`` folds a snapshot into live metrics
  exactly (de-cumulating the Prometheus buckets back to raw counts);
* histograms with different bucket bounds refuse to merge, and a name
  that is two different kinds on the two sides refuses too;
* the dict round-trip (``snapshot_to_dict`` / ``snapshot_from_dict``)
  is lossless, which is what lets worker processes ship snapshots home;
* phase-tree merges (``merge_reports``) keep the profiler's core
  invariant — self times sum *integer-exactly* to total wall time — and
  survive their own dict round-trip.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    PhaseProfiler,
    merge_reports,
    report_from_dict,
    snapshot_from_dict,
    snapshot_to_dict,
    to_collapsed_diff,
)
from repro.obs.registry import Histogram, MetricsError

# -- strategies -------------------------------------------------------------

#: Small shared pool so independent snapshots collide on names often.
NAMES = ("alpha", "beta", "gamma.delta", "x_1")
BOUNDS = (0.1, 1.0, 10.0)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
non_negative = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
observations = st.lists(
    st.floats(
        min_value=-100.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=8,
)

cell_contents = st.fixed_dictionaries(
    {
        "counters": st.dictionaries(st.sampled_from(NAMES), non_negative, max_size=3),
        "gauges": st.dictionaries(st.sampled_from(NAMES), finite, max_size=3),
        "histograms": st.dictionaries(st.sampled_from(NAMES), observations, max_size=3),
    }
)


def build_snapshot(contents) -> MetricsSnapshot:
    """Observe one generated cell's activity in a fresh registry.

    Names are prefixed per kind so a generated cell never collides with
    itself — cross-*cell* collisions (same name, same kind) are the
    interesting case and still happen constantly.
    """
    registry = MetricsRegistry()
    for name, value in contents["counters"].items():
        registry.counter(f"c.{name}").inc(value)
    for name, value in contents["gauges"].items():
        registry.gauge(f"g.{name}").set(value)
    for name, values in contents["histograms"].items():
        histogram = registry.histogram(f"h.{name}", bounds=BOUNDS)
        for value in values:
            histogram.observe(value)
    return registry.snapshot()


snapshots = cell_contents.map(build_snapshot)


def assert_snapshots_close(left: MetricsSnapshot, right: MetricsSnapshot):
    """Equality up to float-summation noise (counter/total sums may be
    grouped differently by the two sides)."""
    assert set(left.counters) == set(right.counters)
    for name in left.counters:
        assert left.counters[name] == pytest.approx(right.counters[name])
    assert left.gauges == right.gauges
    assert set(left.histograms) == set(right.histograms)
    for name in left.histograms:
        mine, theirs = left.histograms[name], right.histograms[name]
        assert mine.bounds == theirs.bounds
        assert mine.buckets == theirs.buckets
        assert mine.count == theirs.count
        assert mine.total == pytest.approx(theirs.total)
        assert mine.low == theirs.low
        assert mine.high == theirs.high


# -- snapshot merge algebra -------------------------------------------------


class TestSnapshotMergeAlgebra:
    @given(a=snapshots, b=snapshots, c=snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        assert_snapshots_close(a.merge(b).merge(c), a.merge(b.merge(c)))

    @given(a=snapshots, b=snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes_when_gauges_are_disjoint(self, a, b):
        shared = set(a.gauges) & set(b.gauges)
        b_disjoint = MetricsSnapshot(
            counters=b.counters,
            gauges={
                name: value
                for name, value in b.gauges.items()
                if name not in shared
            },
            histograms=b.histograms,
        )
        assert_snapshots_close(a.merge(b_disjoint), b_disjoint.merge(a))

    @given(a=snapshots, b=snapshots)
    @settings(max_examples=30, deadline=None)
    def test_shared_gauges_take_the_later_observation(self, a, b):
        merged = a.merge(b)
        for name in set(a.gauges) & set(b.gauges):
            assert merged.gauges[name] == b.gauges[name]

    @given(cells=st.lists(cell_contents, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_merging_per_cell_snapshots_equals_one_combined_registry(
        self, cells
    ):
        merged = MetricsSnapshot(counters={}, gauges={}, histograms={})
        for cell in cells:
            merged = merged.merge(build_snapshot(cell))

        combined = MetricsRegistry()
        for cell in cells:
            for name, value in cell["counters"].items():
                combined.counter(f"c.{name}").inc(value)
            for name, value in cell["gauges"].items():
                combined.gauge(f"g.{name}").set(value)
            for name, values in cell["histograms"].items():
                histogram = combined.histogram(f"h.{name}", bounds=BOUNDS)
                for value in values:
                    histogram.observe(value)
        assert_snapshots_close(merged, combined.snapshot())

    @given(cells=st.lists(cell_contents, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_merge_snapshot_folds_into_a_live_registry_exactly(self, cells):
        merged = MetricsSnapshot(counters={}, gauges={}, histograms={})
        registry = MetricsRegistry()
        for cell in cells:
            snapshot = build_snapshot(cell)
            merged = merged.merge(snapshot)
            registry.merge_snapshot(snapshot)
        assert_snapshots_close(registry.snapshot(), merged)

    @given(snapshot=snapshots)
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_is_lossless(self, snapshot):
        restored = snapshot_from_dict(snapshot_to_dict(snapshot))
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert set(restored.histograms) == set(snapshot.histograms)
        for name, original in snapshot.histograms.items():
            copy = restored.histograms[name]
            assert copy.bounds == original.bounds
            assert copy.buckets == original.buckets
            assert copy.count == original.count
            assert copy.total == pytest.approx(original.total, abs=1e-9)
            assert copy.low == original.low
            assert copy.high == original.high


class TestMergeRejections:
    def _histogram_snapshot(self, bounds, values):
        histogram = Histogram("h.same", bounds)
        for value in values:
            histogram.observe(value)
        return histogram.snapshot()

    def test_incompatible_histogram_bounds_raise(self):
        left = self._histogram_snapshot((0.1, 1.0), [0.5])
        right = self._histogram_snapshot((0.2, 2.0), [0.5])
        with pytest.raises(MetricsError, match="bucket bounds"):
            left.merge(right)
        snap_left = MetricsSnapshot(
            counters={}, gauges={}, histograms={"h.same": left}
        )
        snap_right = MetricsSnapshot(
            counters={}, gauges={}, histograms={"h.same": right}
        )
        with pytest.raises(MetricsError, match="bucket bounds"):
            snap_left.merge(snap_right)

    def test_incompatible_bounds_refuse_merge_into_registry(self):
        registry = MetricsRegistry()
        registry.histogram("h.same", bounds=(0.1, 1.0)).observe(0.5)
        incoming = MetricsSnapshot(
            counters={},
            gauges={},
            histograms={
                "h.same": self._histogram_snapshot((0.2, 2.0), [0.5])
            },
        )
        with pytest.raises(MetricsError, match="bucket bounds"):
            registry.merge_snapshot(incoming)

    @pytest.mark.parametrize(
        "left_kind,right_kind",
        [
            ("counter", "gauge"),
            ("counter", "histogram"),
            ("gauge", "histogram"),
        ],
    )
    def test_cross_kind_name_collision_raises(self, left_kind, right_kind):
        def single(kind):
            registry = MetricsRegistry()
            if kind == "counter":
                registry.counter("metric.name").inc(1.0)
            elif kind == "gauge":
                registry.gauge("metric.name").set(1.0)
            else:
                registry.histogram("metric.name", bounds=BOUNDS).observe(1.0)
            return registry.snapshot()

        with pytest.raises(MetricsError, match="metric.name"):
            single(left_kind).merge(single(right_kind))
        with pytest.raises(MetricsError, match="metric.name"):
            single(right_kind).merge(single(left_kind))


# -- phase-tree merge -------------------------------------------------------

#: Phase paths as nesting instructions; a small pool keeps overlap high.
phase_paths = st.lists(
    st.lists(st.sampled_from(("solve", "iteration", "flush", "io")),
             min_size=1, max_size=3),
    min_size=1,
    max_size=6,
)


def profile_with_paths(paths) -> "object":
    profiler = PhaseProfiler()
    for path in paths:
        stack = [profiler.phase(name) for name in path]
        for phase in stack:
            phase.__enter__()
        for phase in reversed(stack):
            phase.__exit__(None, None, None)
    return profiler.report()


class TestPhaseTreeMerge:
    @given(runs=st.lists(phase_paths, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merged_self_times_sum_exactly_to_root_wall(self, runs):
        reports = [profile_with_paths(paths) for paths in runs]
        merged = merge_reports(*reports)
        # Integer-exact, not approx: self = wall - sum(children) must
        # survive the merge without a nanosecond of drift.
        assert merged.total_self_wall_ns == merged.total_wall_ns
        assert merged.total_wall_ns == sum(
            report.total_wall_ns for report in reports
        )

    @given(runs=st.lists(phase_paths, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merged_calls_sum_per_path(self, runs):
        reports = [profile_with_paths(paths) for paths in runs]
        merged = merge_reports(*reports)
        for stat in merged.stats:
            per_report = [
                found.calls
                for report in reports
                if (found := report.find(stat.dotted)) is not None
            ]
            assert stat.calls == sum(per_report)

    @given(paths=phase_paths)
    @settings(max_examples=30, deadline=None)
    def test_report_dict_round_trip(self, paths):
        report = profile_with_paths(paths)
        assert report_from_dict(report.to_dict()).to_dict() == report.to_dict()

    @given(paths=phase_paths)
    @settings(max_examples=20, deadline=None)
    def test_diff_of_report_with_itself_has_equal_columns(self, paths):
        report = profile_with_paths(paths)
        for line in to_collapsed_diff(report, report).splitlines():
            stack, before, after = line.rsplit(" ", 2)
            assert stack
            assert int(before) == int(after)

    def test_merge_of_nothing_is_an_empty_report(self):
        merged = merge_reports()
        assert merged.total_wall_ns == 0
        assert merged.empty


class TestFiniteness:
    @given(snapshot=snapshots)
    @settings(max_examples=30, deadline=None)
    def test_snapshot_dict_is_canonical_json_safe(self, snapshot):
        from repro.canonical import canonical_json

        payload = snapshot_to_dict(snapshot)
        text = canonical_json(payload)
        assert "NaN" not in text and "Infinity" not in text
        assert all(
            math.isfinite(value)
            for value in snapshot.counters.values()
        )
