"""Tests for deterministic trace replay.

The contract under test is the PR's acceptance criterion: replaying a v2
capture re-materializes the run's final rates, populations and prices
*bit-identically* to the live runtime — including a fault-injected
asynchronous run with crashed agents — plus the seek/step cursor
semantics the CLI relies on.
"""

import pytest

from repro.events.reliability import RetryPolicy
from repro.obs import MemorySink, Telemetry
from repro.obs.events import (
    AgentExchangeEvent,
    FaultInjectedEvent,
    IterationEvent,
)
from repro.obs.replay import ReplayEngine, ReplayError, render_state
from repro.obs.sinks import read_jsonl
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import FaultPlan
from repro.runtime.synchronous import SynchronousRuntime

from .test_events import FIXTURES


@pytest.fixture(scope="module")
def sync_run():
    from tests.conftest import make_tiny_problem

    problem = make_tiny_problem()
    sink = MemorySink()
    runtime = SynchronousRuntime(
        problem, telemetry=Telemetry(sink=sink), trace_id="sync-test"
    )
    runtime.run(120)
    return runtime, sink.events


@pytest.fixture(scope="module")
def chaos_run():
    from tests.conftest import make_tiny_problem

    problem = make_tiny_problem()
    plan = FaultPlan.random(
        problem, seed=7, horizon=80.0, crash_rate=0.02,
        storm_rate=0.01, partition_rate=0.01, warmup=5.0,
    )
    sink = MemorySink()
    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=3, loss_probability=0.05),
        fault_plan=plan,
        retry=RetryPolicy(timeout=2.0, max_retries=3),
        telemetry=Telemetry(sink=sink),
        trace_id="chaos-test",
    )
    runtime.run_until(80.0)
    assert runtime.recoveries  # the plan actually crashed something
    return runtime, sink.events


class TestBitIdenticalFinalState:
    def test_sync_final_state_matches_live_runtime(self, sync_run):
        runtime, events = sync_run
        final = ReplayEngine(events).final()
        allocation = runtime.allocation()
        assert final.rates == allocation.rates  # bit-identical, no approx
        assert final.populations == allocation.populations
        assert final.node_prices == runtime.node_prices()
        assert final.link_prices == runtime.link_prices()
        assert final.utility == runtime.utilities[-1]
        assert final.down == frozenset()

    def test_chaos_final_state_matches_live_runtime(self, chaos_run):
        runtime, events = chaos_run
        final = ReplayEngine(events).final()
        allocation = runtime.allocation()
        assert final.rates == allocation.rates
        assert final.populations == allocation.populations
        assert final.node_prices == runtime.node_prices()
        assert final.link_prices == runtime.link_prices()
        assert final.down == runtime.down_agents


class TestCursorSemantics:
    def test_seek_zero_is_the_empty_state(self, sync_run):
        _, events = sync_run
        state = ReplayEngine(events).seek(0)
        assert state.index == 0
        assert state.rates == {}
        assert state.utility is None

    def test_step_advances_one_event_at_a_time(self, sync_run):
        _, events = sync_run
        engine = ReplayEngine(events)
        first = engine.step()
        assert first.index == 1
        assert engine.cursor == 1
        second = engine.step()
        assert second.index == 2

    def test_step_past_the_end_raises(self):
        engine = ReplayEngine([IterationEvent(iteration=1, utility=1.0, t_ns=1)])
        engine.step()
        with pytest.raises(ReplayError, match="exhausted"):
            engine.step()

    def test_seek_backward_refolds_from_scratch(self, sync_run):
        _, events = sync_run
        engine = ReplayEngine(events)
        halfway = engine.seek(len(events) // 2)
        engine.final()
        again = engine.seek(len(events) // 2)
        assert again == halfway

    def test_negative_index_counts_from_the_end(self, sync_run):
        _, events = sync_run
        engine = ReplayEngine(events)
        assert engine.seek(-1) == engine.seek(len(events) - 1)

    def test_out_of_range_seek_raises(self, sync_run):
        _, events = sync_run
        engine = ReplayEngine(events)
        with pytest.raises(ReplayError, match="out of range"):
            engine.seek(len(events) + 1)
        with pytest.raises(ReplayError, match="out of range"):
            engine.seek(-len(events) - 1)

    def test_intermediate_states_are_a_prefix_fold(self, sync_run):
        _, events = sync_run
        prefix = len(events) // 3
        whole = ReplayEngine(events).seek(prefix)
        truncated = ReplayEngine(events[:prefix]).final()
        assert whole.rates == truncated.rates
        assert whole.utility == truncated.utility


class TestFaultSemantics:
    def test_down_nodes_report_zero_populations(self):
        events = [
            AgentExchangeEvent(
                agent="node:S", role="node", sent=1, stamp=1.0, t_ns=1,
                price=0.2, populations={"ca": 4},
            ),
            FaultInjectedEvent(fault="crash", target="node:S", at=2.0, t_ns=2),
        ]
        engine = ReplayEngine(events)
        assert engine.seek(1).populations == {"ca": 4}
        crashed = engine.final()
        assert crashed.down == frozenset({"node:S"})
        assert crashed.populations == {"ca": 4 - 4}  # reported as 0 while down
        assert crashed.node_prices == {"S": 0.2}  # price state survives

    def test_chaos_replay_tracks_down_set_over_time(self, chaos_run):
        runtime, events = chaos_run
        engine = ReplayEngine(events)
        saw_down = False
        for index in range(0, len(events), max(1, len(events) // 50)):
            if engine.seek(index).down:
                saw_down = True
                break
        assert saw_down  # at least one crash window is visible mid-replay


class TestCaptureCompatibility:
    def test_v1_fixture_replays_without_error(self):
        events = list(read_jsonl(FIXTURES / "trace_v1.jsonl"))
        final = ReplayEngine(events).final()
        assert final.index == len(events)
        # v1 iteration snapshots still materialize state.
        assert final.rates == {"fa": 12.5, "fb": 7.25}
        assert final.utility == 204.5

    def test_snapshot_iterations_fold_into_state(self):
        events = [
            IterationEvent(
                iteration=1, utility=10.0, t_ns=1,
                rates={"fa": 1.0}, populations={"ca": 2},
                node_prices={"S": 0.1}, link_prices={"l": 0.0},
            ),
            IterationEvent(iteration=2, utility=12.0, t_ns=2),  # light form
        ]
        final = ReplayEngine(events).final()
        assert final.rates == {"fa": 1.0}  # light samples don't erase state
        assert final.utility == 12.0
        assert final.node_prices == {"S": 0.1}


class TestRenderState:
    def test_render_includes_position_and_utility(self, sync_run):
        _, events = sync_run
        engine = ReplayEngine(events)
        text = render_state(engine.final(), total_events=len(events))
        assert f"{len(events)}/{len(events)} event(s)" in text
        assert "utility:" in text
        assert "rates:" in text


class TestStreamingIngest:
    def test_ingest_matches_materialized_replay(self, sync_run):
        _, events = sync_run
        streaming = ReplayEngine()
        for event in events:
            streaming.ingest(event)
        materialized = ReplayEngine(events).final()
        state = streaming.state()
        assert state.index == materialized.index
        assert state.rates == materialized.rates
        assert state.populations == materialized.populations
        assert state.node_prices == materialized.node_prices
        assert state.utility == materialized.utility

    def test_ingested_events_are_not_retained(self, sync_run):
        _, events = sync_run
        streaming = ReplayEngine()
        for event in events:
            streaming.ingest(event)
        assert len(streaming) == 0
        assert streaming.cursor == len(events)

    def test_backward_seek_raises_in_streaming_mode(self, sync_run):
        _, events = sync_run
        streaming = ReplayEngine()
        for event in events[:10]:
            streaming.ingest(event)
        with pytest.raises(ReplayError, match="streaming"):
            streaming.seek(0)

    def test_seek_to_current_cursor_is_allowed(self, sync_run):
        _, events = sync_run
        streaming = ReplayEngine()
        for event in events[:10]:
            streaming.ingest(event)
        assert streaming.seek(10).index == 10
