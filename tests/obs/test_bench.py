"""Tests for the benchmark trajectory artifact and regression watchdog."""

import json
import math

import pytest

from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    collect_metrics,
    compare_snapshots,
    consolidate,
    metric_direction,
    render_comparison,
)


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name",
        [
            "observability.overhead_ratio",
            "faults.single_crash.cold.recovery_time",
            "engines.solve_ns",
            "faults.storm.messages_lost",
            "faults.storm.downtime",
        ],
    )
    def test_latency_like_metrics_regress_upward(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize(
        "name",
        [
            "engines.workloads.0.speedup",
            "faults.chaos.retention",
            "engines.base.utility",
            "pipeline.throughput",
        ],
    )
    def test_throughput_like_metrics_regress_downward(self, name):
        assert metric_direction(name) == "higher"

    def test_unrecognized_leaves_are_neutral(self):
        assert metric_direction("engines.workloads.count") == "neutral"

    def test_only_the_leaf_segment_decides(self):
        # "time" in a prefix must not make the leaf latency-like.
        assert metric_direction("time_series.bucket.count") == "neutral"

    @pytest.mark.parametrize(
        "name",
        [
            # Deficit metrics that *mention* a higher-is-better word: the
            # trailing loss/drop tag must win.  Pre-fix these classified
            # "higher", so a growing loss passed the watchdog silently.
            "engines.scale.utility_loss",
            "faults.chaos.retention_drop",
            "sweep.farm.throughput_loss",
            "runtime.messages.drop",
            "runtime.packet_loss",
        ],
    )
    def test_loss_and_drop_are_deficits(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize(
        ("name", "direction"),
        [
            # Suffix tags outrank substring hits in either direction.
            ("engines.total_utility", "higher"),
            ("engines.scale.sparse_speedup", "higher"),
            ("sweep.cache.hits", "higher"),
            ("sweep.cache.misses", "lower"),
            ("sweep.farm.wall_time_seconds", "lower"),
        ],
    )
    def test_match_strength_precedence(self, name, direction):
        assert metric_direction(name) == direction


class TestCollectMetrics:
    def test_flattens_nested_payloads_with_dotted_paths(self):
        payload = {"a": {"b": 1.5, "list": [2, {"c": 3}]}, "top": 4}
        assert collect_metrics(payload) == {
            "a.b": 1.5,
            "a.list.0": 2.0,
            "a.list.1.c": 3.0,
            "top": 4.0,
        }

    def test_skips_bools_strings_and_non_finite(self):
        payload = {"flag": True, "name": "x", "bad": math.inf, "ok": 1.0}
        assert collect_metrics(payload) == {"ok": 1.0}


class TestConsolidate:
    def test_merges_suites_with_prefixes(self, tmp_path):
        (tmp_path / "BENCH_engines.json").write_text(
            json.dumps({"speedup": 3.5}), encoding="utf-8"
        )
        (tmp_path / "BENCH_faults.json").write_text(
            json.dumps({"retention": 0.99}), encoding="utf-8"
        )
        snapshot = consolidate(tmp_path)
        assert snapshot["version"] == 1
        assert snapshot["suites"] == ["engines", "faults"]
        assert snapshot["metrics"] == {
            "engines.speedup": 3.5,
            "faults.retention": 0.99,
        }

    def test_corrupt_suite_is_skipped_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text("{\"x\": 1}", encoding="utf-8")
        (tmp_path / "BENCH_bad.json").write_text("{nope", encoding="utf-8")
        snapshot = consolidate(tmp_path)
        assert snapshot["suites"] == ["good"]
        assert snapshot["skipped"] == ["BENCH_bad.json"]

    def test_existing_trajectory_is_never_folded_in(self, tmp_path):
        (tmp_path / "BENCH_engines.json").write_text("{\"x\": 1}", encoding="utf-8")
        (tmp_path / "BENCH_trajectory.json").write_text(
            json.dumps({"metrics": {"stale": 9.0}}), encoding="utf-8"
        )
        snapshot = consolidate(tmp_path)
        assert "trajectory" not in snapshot["suites"]
        assert "metrics.stale" not in snapshot["metrics"]

    def test_checked_in_trajectory_artifact_is_well_formed(self):
        # Timings in the committed snapshot drift every time a perf suite
        # reruns, so assert shape, not values: same schema consolidate()
        # writes, every metric prefixed by a listed suite, all finite.
        from pathlib import Path

        results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        committed = json.loads(
            (results / "BENCH_trajectory.json").read_text(encoding="utf-8")
        )
        assert committed["version"] == 1
        assert committed["skipped"] == []
        suites = committed["suites"]
        assert set(suites) >= {"engines", "faults", "observability"}
        metrics = committed["metrics"]
        assert metrics
        assert list(metrics) == sorted(metrics)
        for name, value in metrics.items():
            assert name.split(".", 1)[0] in suites
            assert math.isfinite(value)


def snapshot(**metrics):
    return {"version": 1, "metrics": metrics}


class TestCompareSnapshots:
    def test_identical_snapshots_are_all_stable(self):
        old = snapshot(**{"engines.speedup": 3.0, "faults.retention": 0.99})
        comparison = compare_snapshots(old, old)
        assert comparison.threshold == DEFAULT_THRESHOLD
        assert comparison.regressions == ()
        assert comparison.improvements == ()
        assert comparison.stable == 2

    def test_slow_down_past_threshold_is_a_regression(self):
        old = snapshot(**{"obs.overhead_ratio": 1.0})
        new = snapshot(**{"obs.overhead_ratio": 1.2})
        comparison = compare_snapshots(old, new)
        assert len(comparison.regressions) == 1
        delta = comparison.regressions[0]
        assert delta.name == "obs.overhead_ratio"
        assert delta.change == pytest.approx(0.2)
        assert delta.is_regression

    def test_speedup_drop_is_a_regression_and_gain_an_improvement(self):
        old = snapshot(**{"engines.speedup": 4.0})
        worse = compare_snapshots(old, snapshot(**{"engines.speedup": 3.0}))
        assert len(worse.regressions) == 1
        better = compare_snapshots(old, snapshot(**{"engines.speedup": 5.0}))
        assert better.regressions == ()
        assert len(better.improvements) == 1

    def test_movement_within_threshold_is_stable(self):
        old = snapshot(**{"engines.speedup": 4.0})
        new = snapshot(**{"engines.speedup": 3.8})  # -5%, under 10%
        comparison = compare_snapshots(old, new)
        assert comparison.regressions == ()
        assert comparison.stable == 1

    def test_neutral_metrics_never_regress(self):
        old = snapshot(**{"engines.workloads.count": 3.0})
        new = snapshot(**{"engines.workloads.count": 30.0})
        comparison = compare_snapshots(old, new)
        assert comparison.regressions == ()
        assert len(comparison.changes) == 1
        assert not comparison.changes[0].is_regression

    def test_missing_and_added_metrics_are_reported(self):
        comparison = compare_snapshots(
            snapshot(**{"gone.speedup": 1.0, "both.speedup": 1.0}),
            snapshot(**{"both.speedup": 1.0, "fresh.speedup": 2.0}),
        )
        assert comparison.missing == ("gone.speedup",)
        assert comparison.added == ("fresh.speedup",)

    def test_growth_from_zero_is_infinite_change(self):
        comparison = compare_snapshots(
            snapshot(**{"faults.downtime": 0.0}),
            snapshot(**{"faults.downtime": 5.0}),
        )
        assert len(comparison.regressions) == 1
        assert math.isinf(comparison.regressions[0].change)

    def test_raw_bench_payloads_are_accepted_directly(self):
        old = {"speedup": 4.0}  # no "metrics" wrapper
        new = {"speedup": 2.0}
        comparison = compare_snapshots(old, new)
        assert len(comparison.regressions) == 1

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_snapshots(snapshot(), snapshot(), threshold=0.0)

    def test_regressions_sort_by_magnitude(self):
        old = snapshot(**{"a.speedup": 4.0, "b.speedup": 4.0})
        new = snapshot(**{"a.speedup": 3.0, "b.speedup": 1.0})
        comparison = compare_snapshots(old, new)
        assert [d.name for d in comparison.regressions] == ["b.speedup", "a.speedup"]

    def test_to_dict_is_json_ready(self):
        comparison = compare_snapshots(
            snapshot(**{"a.speedup": 4.0}), snapshot(**{"a.speedup": 1.0})
        )
        payload = comparison.to_dict()
        assert payload["regressions"][0]["metric"] == "a.speedup"
        json.dumps(payload)


class TestRenderComparison:
    def test_summary_line_counts_each_bucket(self):
        comparison = compare_snapshots(
            snapshot(**{"a.speedup": 4.0, "b.count": 1.0, "c.speedup": 2.0}),
            snapshot(**{"a.speedup": 1.0, "b.count": 9.0, "c.speedup": 4.0}),
        )
        text = render_comparison(comparison)
        assert "1 regression(s), 1 improvement(s), 1 neutral change(s)" in text
        assert "a.speedup: 4 -> 1" in text
        assert "worse" in text and "better" in text and "moved" in text

    def test_missing_and_added_render(self):
        comparison = compare_snapshots(
            snapshot(**{"gone.x": 1.0}), snapshot(**{"new.x": 1.0})
        )
        text = render_comparison(comparison)
        assert "missing in new: gone.x" in text
        assert "added in new: new.x" in text


class TestRegressionBlame:
    def _snapshots(self):
        old = snapshot(**{
            "profile.wall_time_seconds": 1.0,
            "profile.phases.solve.iteration.argmax.self_seconds": 0.40,
            "profile.phases.solve.iteration.admission.self_seconds": 0.30,
            "profile.phases.solve.iteration.price_update.self_seconds": 0.20,
        })
        new = snapshot(**{
            "profile.wall_time_seconds": 1.5,
            "profile.phases.solve.iteration.argmax.self_seconds": 0.41,
            "profile.phases.solve.iteration.admission.self_seconds": 0.78,
            "profile.phases.solve.iteration.price_update.self_seconds": 0.19,
        })
        return old, new

    def test_wall_clock_regression_ranks_grown_phases(self):
        comparison = compare_snapshots(*self._snapshots())
        assert [d.name for d in comparison.regressions] == [
            "profile.wall_time_seconds"
        ]
        phases = [entry.phase for entry in comparison.blame]
        assert phases[0] == "solve.iteration.admission"
        assert "solve.iteration.price_update" not in phases  # shrank
        top = comparison.blame[0]
        assert top.delta_seconds == pytest.approx(0.48)
        assert top.change == pytest.approx(1.6)

    def test_no_regression_means_no_blame(self):
        old, _ = self._snapshots()
        comparison = compare_snapshots(old, old)
        assert comparison.blame == ()

    def test_self_seconds_leaves_are_not_themselves_watchdogged(self):
        # Phase timings move with machine load; only the blame ranking
        # may interpret them, never the generic regression scan.
        assert (
            metric_direction(
                "profile.phases.solve.iteration.argmax.self_seconds"
            )
            == "neutral"
        )
        old, new = self._snapshots()
        comparison = compare_snapshots(old, new)
        assert all(
            not d.name.endswith(".self_seconds") for d in comparison.regressions
        )

    def test_throughput_only_regressions_skip_blame(self):
        old = snapshot(**{
            "engines.speedup": 4.0,
            "profile.phases.solve.self_seconds": 0.5,
        })
        new = snapshot(**{
            "engines.speedup": 2.0,
            "profile.phases.solve.self_seconds": 0.9,
        })
        comparison = compare_snapshots(old, new)
        assert len(comparison.regressions) == 1
        assert comparison.blame == ()

    def test_phase_present_in_only_one_snapshot_is_not_blamed(self):
        old = snapshot(**{
            "profile.wall_time_seconds": 1.0,
            "profile.phases.old_phase.self_seconds": 0.5,
        })
        new = snapshot(**{
            "profile.wall_time_seconds": 2.0,
            "profile.phases.new_phase.self_seconds": 1.5,
        })
        comparison = compare_snapshots(old, new)
        assert comparison.regressions
        assert comparison.blame == ()

    def test_blame_is_capped_at_five_phases(self):
        metrics_old = {"suite.wall_time_seconds": 1.0}
        metrics_new = {"suite.wall_time_seconds": 2.0}
        for index in range(8):
            name = f"suite.phases.p{index}.self_seconds"
            metrics_old[name] = 0.1
            metrics_new[name] = 0.2 + index * 0.01
        comparison = compare_snapshots(
            snapshot(**metrics_old), snapshot(**metrics_new)
        )
        assert len(comparison.blame) == 5
        assert comparison.blame[0].phase == "p7"  # largest absolute growth

    def test_blame_renders_and_serializes(self):
        comparison = compare_snapshots(*self._snapshots())
        text = render_comparison(comparison)
        assert "regression blame" in text
        assert "solve.iteration.admission" in text
        payload = comparison.to_dict()
        assert payload["blame"][0]["phase"] == "solve.iteration.admission"
        json.dumps(payload)
