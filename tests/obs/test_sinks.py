"""Tests for trace sinks and the shared CSV formatting rule."""

import gzip
import io
import math

import pytest

from repro.obs.events import (
    GammaStepEvent,
    IterationEvent,
    MessageEvent,
    TraceEventError,
)
from repro.obs.sinks import (
    NULL_SINK,
    CsvSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceSink,
    format_cell,
    open_trace,
    read_jsonl,
    render_csv,
)


def iteration(i, utility=1.0, **extra):
    return IterationEvent(iteration=i, utility=utility, t_ns=i, **extra)


class TestProtocol:
    @pytest.mark.parametrize(
        "sink", [NullSink(), MemorySink(), CsvSink(io.StringIO())]
    )
    def test_implementations_satisfy_protocol(self, sink):
        assert isinstance(sink, TraceSink)


class TestMemorySink:
    def test_buffers_in_order_and_filters_by_kind(self):
        sink = MemorySink()
        events = [
            iteration(1),
            GammaStepEvent("S", 0.1, 0.05, True, t_ns=2),
            iteration(2),
        ]
        for event in events:
            sink.emit(event)
        assert sink.events == events
        assert sink.of_kind("iteration") == [events[0], events[2]]
        sink.clear()
        assert sink.events == []

    def test_null_sink_discards(self):
        NULL_SINK.emit(iteration(1))
        NULL_SINK.close()


class TestJsonlNonFiniteRejection:
    """NaN/inf must fail at emit time, not poison the capture."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_values_raise_trace_event_error(self, bad):
        sink = JsonlSink(io.StringIO())
        with pytest.raises(TraceEventError, match="non-finite"):
            sink.emit(iteration(1, utility=bad))

    def test_rejected_event_writes_nothing(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        with pytest.raises(TraceEventError):
            sink.emit(iteration(1, rates={"fa": math.nan}))
        sink.emit(iteration(2))
        sink.close()
        assert len(buffer.getvalue().splitlines()) == 1


class TestOpenTrace:
    """Gzip captures are detected by magic bytes, not file extension."""

    def events(self):
        return [iteration(1), iteration(2, utility=2.5)]

    def write_gzip(self, path):
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            sink = JsonlSink(stream)
            for event in self.events():
                sink.emit(event)
        return path

    def test_reads_gzip_capture_regardless_of_suffix(self, tmp_path):
        path = self.write_gzip(tmp_path / "trace.jsonl")  # no .gz suffix
        with open_trace(path) as stream:
            lines = stream.read().splitlines()
        assert len(lines) == 2

    def test_reads_plain_capture(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for event in self.events():
            sink.emit(event)
        sink.close()
        with open_trace(path) as stream:
            assert len(stream.read().splitlines()) == 2

    def test_read_jsonl_round_trips_gzip_paths(self, tmp_path):
        path = self.write_gzip(tmp_path / "trace.jsonl.gz")
        assert list(read_jsonl(path)) == self.events()


class TestFormatCell:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (None, ""),
            (0.1, "0.1"),
            (1.0, "1.0"),  # floats keep their repr, even integral ones
            (7, "7"),
            (True, "True"),  # bool is an int but must not render as one
            ("S", "S"),
        ],
    )
    def test_one_rule_for_every_column(self, value, expected):
        assert format_cell(value) == expected

    def test_float_repr_round_trips(self):
        value = 0.1 + 0.2  # classic non-representable sum
        assert float(format_cell(value)) == value


class TestCsvSink:
    def test_auto_union_puts_type_first_then_sorted(self):
        text = render_csv(
            [
                iteration(1),
                MessageEvent("a", "b", "RateUpdate", t_ns=2, latency=None),
            ]
        )
        header = text.splitlines()[0].split(",")
        assert header[0] == "type"
        assert header[1:] == sorted(header[1:])

    def test_absent_keys_render_empty_cells(self):
        text = render_csv(
            [iteration(1, rates={"fa": 2.0}), iteration(2)]
        )
        lines = text.splitlines()
        header = lines[0].split(",")
        index = header.index("rate:fa")
        assert lines[1].split(",")[index] == "2.0"
        assert lines[2].split(",")[index] == ""

    def test_pinned_fieldnames_keep_order(self):
        buffer = io.StringIO()
        sink = CsvSink(
            buffer,
            fieldnames=["utility", "iteration"],
            drop=("type", "t_ns"),
        )
        sink.emit(iteration(1, utility=3.5))
        sink.close()
        assert buffer.getvalue().splitlines() == ["utility,iteration", "3.5,1"]

    def test_pinned_fieldnames_reject_unknown_keys(self):
        sink = CsvSink(io.StringIO(), fieldnames=["iteration"])
        sink.emit(iteration(1))  # flatten has type/utility/t_ns too
        with pytest.raises(ValueError, match="not in pinned CSV columns"):
            sink.close()

    def test_drop_removes_envelope_keys(self):
        buffer = io.StringIO()
        sink = CsvSink(buffer, drop=("type", "t_ns"))
        sink.emit(iteration(1))
        sink.close()
        assert buffer.getvalue().splitlines()[0] == "iteration,utility"

    def test_drop_order_never_affects_output(self):
        # Regression for an R11 finding: ``drop`` used to be stored as a
        # frozenset and iterated per event, tying the (future-proofed)
        # emit path to hash iteration order.  The stored form is now a
        # sorted tuple, so permuted construction orders are one state.
        def render(drop):
            buffer = io.StringIO()
            sink = CsvSink(buffer, drop=drop)
            sink.emit(iteration(1))
            sink.emit(iteration(2, rates={"fa": 1.5}))
            sink.close()
            return buffer.getvalue()

        forward = render(("type", "t_ns", "rate:fa"))
        backward = render(("rate:fa", "t_ns", "type", "t_ns"))  # dupes too
        assert forward == backward
        assert CsvSink(io.StringIO(), drop=("b", "a", "b"))._drop == ("a", "b")

    def test_writes_file_and_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.csv"
        sink = CsvSink(path)
        sink.emit(iteration(1))
        sink.close()
        sink.close()  # second close is a no-op
        assert path.read_text().startswith("type,")

    def test_borrowed_stream_stays_open(self):
        buffer = io.StringIO()
        sink = CsvSink(buffer)
        sink.emit(iteration(1))
        sink.close()
        assert not buffer.closed  # caller owns it
