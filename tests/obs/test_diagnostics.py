"""Tests for convergence diagnostics."""

import pytest

from repro.obs.diagnostics import (
    ConvergenceDiagnostics,
    count_oscillations,
    diagnostics_to_dict,
    render_diagnostics,
)
from repro.obs.events import IterationEvent, PriceUpdateEvent


def price_update(resource, old, new, *, t_ns=0, usage=None, capacity=None):
    return PriceUpdateEvent(
        resource_kind="node",
        resource=resource,
        old_price=old,
        new_price=new,
        step=0.1,
        branch="track",
        t_ns=t_ns,
        usage=usage,
        capacity=capacity,
    )


class TestCountOscillations:
    @pytest.mark.parametrize(
        ("series", "expected"),
        [
            ([], 0),
            ([1.0], 0),
            ([1.0, 2.0, 3.0], 0),  # monotone: no reversal
            ([1.0, 2.0, 1.0], 1),  # up then down
            ([1.0, 2.0, 1.0, 2.0, 1.0], 3),  # full zig-zag
            ([1.0, 2.0, 2.0, 1.0], 1),  # plateau doesn't reset direction
            ([1.0, 1.0, 1.0], 0),  # flat: nothing to reverse
        ],
    )
    def test_sign_reversals(self, series, expected):
        assert count_oscillations(series) == expected


class TestAnalyze:
    def test_convergence_on_constant_utilities(self):
        events = [
            IterationEvent(iteration=i, utility=100.0, t_ns=i * 10)
            for i in range(1, 16)
        ]
        report = ConvergenceDiagnostics(window=10).analyze(events)
        assert report.iterations == 15
        assert report.converged
        assert report.iterations_to_tolerance == 10  # first full window
        assert report.time_to_tolerance_ns == 90  # stamps[9] - stamps[0]
        assert report.final_utility == 100.0

    def test_no_convergence_when_oscillating(self):
        events = [
            IterationEvent(iteration=i, utility=100.0 + 10 * (-1) ** i, t_ns=i)
            for i in range(1, 31)
        ]
        report = ConvergenceDiagnostics(window=10).analyze(events)
        assert not report.converged
        assert report.iterations_to_tolerance is None
        assert report.trailing_amplitude == pytest.approx(20.0 / 100.0)

    def test_price_series_oscillations_and_slack(self):
        events = [
            price_update("S", 0.0, 1.0),
            price_update("S", 1.0, 0.5),
            price_update("S", 0.5, 0.8, usage=190.0, capacity=200.0),
        ]
        report = ConvergenceDiagnostics().analyze(events)
        resource = report.resources["node:S"]
        assert resource.updates == 3
        assert resource.oscillations == 2
        assert resource.final_price == 0.8
        assert resource.slack == pytest.approx(10.0)
        assert resource.residual == 0.0
        assert report.violated_resources == []

    def test_violation_reported_as_residual(self):
        events = [price_update("S", 0.0, 1.0, usage=250.0, capacity=200.0)]
        report = ConvergenceDiagnostics().analyze(events)
        resource = report.resources["node:S"]
        assert resource.residual == pytest.approx(50.0)
        assert resource.slack == 0.0
        assert report.violated_resources == ["node:S"]

    def test_utility_gap_to_bound(self):
        events = [IterationEvent(iteration=1, utility=90.0, t_ns=0)]
        report = ConvergenceDiagnostics(utility_bound=100.0).analyze(events)
        assert report.utility_gap == pytest.approx(10.0)
        assert report.relative_gap == pytest.approx(0.1)

    def test_empty_stream(self):
        report = ConvergenceDiagnostics().analyze([])
        assert report.iterations == 0
        assert report.final_utility is None
        assert not report.converged
        assert report.resources == {}

    @pytest.mark.parametrize(
        ("window", "rel"), [(1, 1e-3), (0, 1e-3), (10, 0.0), (10, -1.0)]
    )
    def test_invalid_parameters_rejected(self, window, rel):
        with pytest.raises(ValueError):
            ConvergenceDiagnostics(window=window, rel_amplitude=rel)


class TestRendering:
    def test_render_mentions_key_figures(self):
        events = [
            IterationEvent(iteration=i, utility=100.0, t_ns=i) for i in range(1, 12)
        ] + [price_update("S", 0.0, 1.0, usage=250.0, capacity=200.0)]
        text = render_diagnostics(ConvergenceDiagnostics().analyze(events))
        assert "stable by iteration" in text
        assert "VIOLATED" in text
        assert "node:S" in text

    def test_dict_export_adds_derived_fields(self):
        events = [
            IterationEvent(iteration=i, utility=100.0, t_ns=i) for i in range(1, 12)
        ]
        payload = diagnostics_to_dict(ConvergenceDiagnostics().analyze(events))
        assert payload["converged"] is True
        assert payload["total_oscillations"] == 0
        assert payload["violated_resources"] == []
        assert payload["iterations"] == 11
