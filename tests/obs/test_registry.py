"""Tests for the metrics registry primitives."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_counts_up(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_invalid_increments(self, bad):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricsError):
            counter.inc(bad)
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.2)
        assert gauge.value == 4.2

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite(self, bad):
        gauge = MetricsRegistry().gauge("g")
        with pytest.raises(MetricsError):
            gauge.set(bad)

    def test_unset_gauges_excluded_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("never_set")
        registry.gauge("set").set(1.0)
        assert list(registry.snapshot().gauges) == ["set"]


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap.buckets == (1, 2, 3)  # cumulative, +Inf implied by count
        assert snap.count == 4
        assert snap.total == pytest.approx(555.5)
        assert snap.low == 0.5
        assert snap.high == 500.0
        assert snap.mean == pytest.approx(555.5 / 4)

    def test_empty_window_snapshot_invents_nothing(self):
        snap = Histogram("h", bounds=(1.0,)).snapshot()
        assert snap.count == 0
        assert snap.low is None
        assert snap.high is None
        assert snap.mean is None

    def test_boundary_value_falls_in_le_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(1.0)  # Prometheus le semantics: inclusive
        assert histogram.snapshot().buckets == (1, 1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite_observations(self, bad):
        histogram = Histogram("h", bounds=(1.0,))
        with pytest.raises(MetricsError):
            histogram.observe(bad)

    @pytest.mark.parametrize(
        "bounds", [(), (1.0, 1.0), (2.0, 1.0), (float("nan"),), (float("inf"),)]
    )
    def test_rejects_bad_bounds(self, bounds):
        with pytest.raises(MetricsError):
            Histogram("h", bounds=bounds)


class TestTimer:
    def test_context_manager_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        snap = registry.snapshot().histograms["t"]
        assert snap.count == 1
        assert snap.bounds == DEFAULT_TIME_BUCKETS
        assert 0.0 <= snap.total < 1.0  # well under a second

    def test_decorator_observes_every_call(self):
        registry = MetricsRegistry()

        @registry.timer("t")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert registry.snapshot().histograms["t"].count == 2

    def test_decorator_observes_on_exception(self):
        registry = MetricsRegistry()

        @registry.timer("t")
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            boom()
        assert registry.snapshot().histograms["t"].count == 1


class TestRegistry:
    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("m")
        with pytest.raises(MetricsError, match="already registered"):
            registry.histogram("m")

    def test_snapshot_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h", (1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap.counters) == ["a", "b"]
        assert snap.counters == {"a": 2.0, "b": 1.0}
        assert not snap.empty

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot().empty


class TestNullRegistry:
    def test_returns_shared_singletons(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.gauge("a") is registry.gauge("b")
        assert registry.timer("a") is registry.timer("b")

    def test_everything_is_a_noop(self):
        NULL_REGISTRY.counter("c").inc(math.pi)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.snapshot().empty

    def test_null_counter_swallows_even_invalid_values(self):
        # The disabled path must never raise, whatever it is fed.
        NULL_REGISTRY.counter("c").inc(float("nan"))
        NULL_REGISTRY.gauge("g").set(float("inf"))
        NULL_REGISTRY.histogram("h").observe(float("nan"))

    def test_decorator_passthrough(self):
        def f():
            return 42

        assert NULL_REGISTRY.timer("t")(f) is f
