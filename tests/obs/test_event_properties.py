"""Property tests: every event type survives every sink, exactly.

Hypothesis generates arbitrary well-formed instances of all registered
``EVENT_TYPES`` — causal/state fields included — and checks that the
JSONL sink round-trips them bit-for-bit, the memory sink preserves them
by identity, and the CSV sink renders every flattened cell through the
one shared formatting rule.  Non-finite floats must be *rejected* at the
serialization boundary, not smuggled into a capture as ``NaN`` tokens no
strict JSON parser will read back.
"""

import csv
import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import (
    EVENT_TYPES,
    AdmissionEvent,
    AgentExchangeEvent,
    AgentRestartedEvent,
    FaultInjectedEvent,
    GammaStepEvent,
    IterationEvent,
    MessageEvent,
    PriceUpdateEvent,
    TraceEventError,
    event_from_dict,
)
from repro.obs.sinks import JsonlSink, MemorySink, format_cell, read_jsonl, render_csv

# -- strategies -------------------------------------------------------------

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:_-.",
    min_size=1,
    max_size=12,
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
timestamps = st.integers(min_value=0, max_value=2**62)
counts = st.integers(min_value=0, max_value=10**6)
span_ids = st.none() | identifiers
float_maps = st.none() | st.dictionaries(identifiers, finite, max_size=4)
int_maps = st.none() | st.dictionaries(identifiers, counts, max_size=4)

iteration_events = st.builds(
    IterationEvent,
    iteration=counts,
    utility=finite,
    t_ns=timestamps,
    rates=float_maps,
    populations=int_maps,
    node_prices=float_maps,
    link_prices=float_maps,
    gammas=float_maps,
    slack=float_maps,
    at=st.none() | finite,
)
price_events = st.builds(
    PriceUpdateEvent,
    resource_kind=st.sampled_from(["node", "link"]),
    resource=identifiers,
    old_price=finite,
    new_price=finite,
    step=finite,
    branch=st.sampled_from(["track", "violation", "gradient"]),
    t_ns=timestamps,
    usage=st.none() | finite,
    capacity=st.none() | finite,
)
gamma_events = st.builds(
    GammaStepEvent,
    resource=identifiers,
    old_gamma=finite,
    new_gamma=finite,
    fluctuated=st.booleans(),
    t_ns=timestamps,
)
admission_events = st.builds(
    AdmissionEvent,
    node=identifiers,
    admitted=st.dictionaries(identifiers, counts, max_size=4),
    used=finite,
    capacity=finite,
    best_ratio=finite,
    t_ns=timestamps,
)
message_events = st.builds(
    MessageEvent,
    sender=identifiers,
    recipient=identifiers,
    payload=identifiers,
    t_ns=timestamps,
    latency=st.none() | finite,
    at=st.none() | finite,
    trace_id=span_ids,
    span_id=span_ids,
    parent_span_id=span_ids,
)
exchange_events = st.builds(
    AgentExchangeEvent,
    agent=identifiers,
    role=st.sampled_from(["source", "node", "link"]),
    sent=counts,
    stamp=finite,
    t_ns=timestamps,
    trace_id=span_ids,
    span_id=span_ids,
    parent_span_id=span_ids,
    rate=st.none() | finite,
    price=st.none() | finite,
    populations=int_maps,
)
fault_events = st.builds(
    FaultInjectedEvent,
    fault=st.sampled_from(["crash", "partition", "delay_storm"]),
    target=identifiers,
    at=finite,
    t_ns=timestamps,
)
restart_events = st.builds(
    AgentRestartedEvent,
    agent=identifiers,
    at=finite,
    downtime=finite,
    from_checkpoint=st.booleans(),
    t_ns=timestamps,
    rate=st.none() | finite,
    price=st.none() | finite,
    populations=int_maps,
)

BY_KIND = {
    "iteration": iteration_events,
    "price_update": price_events,
    "gamma_step": gamma_events,
    "admission": admission_events,
    "message": message_events,
    "agent_exchange": exchange_events,
    "fault_injected": fault_events,
    "agent_restarted": restart_events,
}

any_event = st.one_of(*BY_KIND.values())
event_batches = st.lists(any_event, min_size=1, max_size=8)


def test_strategies_cover_every_registered_type():
    assert set(BY_KIND) == set(EVENT_TYPES)


# -- round-trip properties --------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(event=any_event)
def test_dict_round_trip_is_lossless(event):
    assert event_from_dict(event.to_dict()) == event


@settings(max_examples=60, deadline=None)
@given(events=event_batches)
def test_jsonl_sink_round_trips_batches(events):
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    for event in events:
        sink.emit(event)
    sink.close()
    assert list(read_jsonl(io.StringIO(buffer.getvalue()))) == events


@settings(max_examples=60, deadline=None)
@given(events=event_batches)
def test_jsonl_lines_are_strict_json(events):
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    for event in events:
        sink.emit(event)
    for line in buffer.getvalue().splitlines():
        payload = json.loads(line)  # strict: would reject NaN tokens
        assert payload["type"] in EVENT_TYPES


@settings(max_examples=60, deadline=None)
@given(events=event_batches)
def test_memory_sink_preserves_order_and_identity(events):
    sink = MemorySink()
    for event in events:
        sink.emit(event)
    assert sink.events == events
    for kind in {event.kind for event in events}:
        assert sink.of_kind(kind) == [e for e in events if e.kind == kind]


@settings(max_examples=40, deadline=None)
@given(events=event_batches)
def test_csv_sink_renders_every_flattened_cell(events):
    rows = list(csv.DictReader(io.StringIO(render_csv(events))))
    assert len(rows) == len(events)
    for event, row in zip(events, rows):
        flat = event.flatten()
        for key, value in flat.items():
            assert row[key] == format_cell(value)
        # Columns the union schema added for *other* events stay empty.
        for key in set(row) - set(flat):
            assert row[key] == ""


@settings(max_examples=80, deadline=None)
@given(value=finite)
def test_float_cells_round_trip_exactly(value):
    cell = format_cell(value)
    assert float(cell) == value or (math.isnan(value) and math.isnan(float(cell)))


# -- non-finite rejection ---------------------------------------------------

non_finite = st.sampled_from([math.nan, math.inf, -math.inf])


@settings(max_examples=30, deadline=None)
@given(bad=non_finite, utility=finite)
def test_jsonl_sink_rejects_non_finite_payloads(bad, utility):
    event = IterationEvent(iteration=1, utility=utility, t_ns=1, rates={"fa": bad})
    sink = JsonlSink(io.StringIO())
    with pytest.raises(TraceEventError, match="non-finite"):
        sink.emit(event)


@settings(max_examples=30, deadline=None)
@given(bad=non_finite)
def test_jsonl_sink_rejects_non_finite_causal_stamps(bad):
    event = MessageEvent("a", "b", "RateUpdate", t_ns=1, latency=bad, at=bad)
    sink = JsonlSink(io.StringIO())
    with pytest.raises(TraceEventError, match="non-finite"):
        sink.emit(event)
