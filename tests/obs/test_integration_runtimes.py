"""Integration: both deployments emit equivalent telemetry on one workload.

The tentpole claim for the observability layer is that the *same* seeded
micro workload, executed by the reference driver, the synchronous runtime,
and the asynchronous runtime, produces iteration-event streams that agree:

* every engine emits one ``iteration`` event per optimization step, in
  order, with the same flattened schema;
* the synchronous runtime's event utilities equal the reference driver's
  bit-for-bit (it *is* the same algorithm, message-passing or not);
* the asynchronous runtime's final sampled utility lands within the same
  tolerance the runtime suite already holds it to (rel=0.02);
* attaching telemetry never perturbs the numerics.
"""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.obs import MemorySink, Telemetry
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.synchronous import SynchronousRuntime

ITERATIONS = 120
HORIZON = 120.0
SEED = 11


def run_reference(problem, telemetry):
    optimizer = LRGP(problem, LRGPConfig.adaptive(telemetry=telemetry))
    optimizer.run(ITERATIONS)
    return optimizer


def iteration_events(sink):
    return sink.of_kind("iteration")


class TestIterationEventEquivalence:
    def test_sync_matches_reference_event_for_event(self, tiny_problem):
        reference_sink = MemorySink()
        reference = run_reference(tiny_problem, Telemetry(sink=reference_sink))

        sync_sink = MemorySink()
        runtime = SynchronousRuntime(
            tiny_problem, telemetry=Telemetry(sink=sync_sink)
        )
        runtime.run(ITERATIONS)

        reference_iterations = iteration_events(reference_sink)
        sync_iterations = iteration_events(sync_sink)
        assert len(reference_iterations) == ITERATIONS
        assert len(sync_iterations) == ITERATIONS
        for ref_event, sync_event in zip(reference_iterations, sync_iterations):
            assert sync_event.iteration == ref_event.iteration
            assert sync_event.utility == ref_event.utility  # bit-identical
        assert runtime.utilities == reference.utilities

    def test_async_schema_matches_and_utility_converges(self, tiny_problem):
        reference = run_reference(tiny_problem, Telemetry(sink=MemorySink()))

        async_sink = MemorySink()
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=SEED),
            telemetry=Telemetry(sink=async_sink),
        )
        runtime.run_until(HORIZON)

        events = iteration_events(async_sink)
        assert len(events) == len(runtime.samples)
        for index, event in enumerate(events, start=1):
            assert event.iteration == index
            # Async samples are the light form: same envelope schema as the
            # synchronous runtime's round events (plus the v2 simulated-time
            # stamp both runtimes now attach).
            assert set(event.flatten()) == {
                "type", "iteration", "utility", "t_ns", "at",
            }
        assert events[-1].utility == runtime.samples[-1][1]
        assert runtime.converged_utility() == pytest.approx(
            reference.utilities[-1], rel=0.02
        )

    def test_sync_and_async_emit_identical_schemas(self, tiny_problem):
        sync_sink = MemorySink()
        SynchronousRuntime(
            tiny_problem, telemetry=Telemetry(sink=sync_sink)
        ).run(20)
        async_sink = MemorySink()
        AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=SEED), telemetry=Telemetry(sink=async_sink)
        ).run_until(20.0)

        sync_schemas = {frozenset(e.flatten()) for e in iteration_events(sync_sink)}
        async_schemas = {frozenset(e.flatten()) for e in iteration_events(async_sink)}
        assert sync_schemas == async_schemas
        # Both deployments also exercise the message/agent instrumentation.
        assert {e.kind for e in sync_sink.events} >= {
            "iteration",
            "message",
            "agent_exchange",
            "price_update",
        }
        assert {e.kind for e in async_sink.events} >= {
            "iteration",
            "message",
            "agent_exchange",
            "price_update",
        }


class TestTelemetryIsInert:
    def test_reference_trajectory_unchanged_by_telemetry(self, tiny_problem):
        bare = LRGP(tiny_problem, LRGPConfig.adaptive())
        bare.run(ITERATIONS)
        instrumented = run_reference(tiny_problem, Telemetry(sink=MemorySink()))
        assert instrumented.utilities == bare.utilities

    def test_async_trajectory_unchanged_by_telemetry(self, tiny_problem):
        bare = AsynchronousRuntime(tiny_problem, AsyncConfig(seed=SEED))
        bare.run_until(HORIZON)
        instrumented = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=SEED), telemetry=Telemetry(sink=MemorySink())
        )
        instrumented.run_until(HORIZON)
        assert instrumented.samples == bare.samples

    def test_metrics_account_for_every_round(self, tiny_problem):
        telemetry = Telemetry()
        runtime = SynchronousRuntime(tiny_problem, telemetry=telemetry)
        runtime.run(25)
        snapshot = telemetry.registry.snapshot()
        assert snapshot.counters["runtime.sync.rounds"] == 25
        assert snapshot.counters["runtime.sync.messages"] == runtime.messages_sent
        assert snapshot.gauges["runtime.sync.utility"] == runtime.utilities[-1]
        timer = snapshot.histograms["runtime.sync.round"]
        assert timer.count == 25
