"""Tests for the Prometheus-text and JSON exporters."""

import json
import re

import pytest

from repro.obs.export import (
    render_metrics,
    sanitize_metric_name,
    snapshot_to_dict,
    to_json,
    to_prometheus_text,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("lrgp.iterations").inc(5)
    registry.gauge("lrgp.utility").set(227.5)
    histogram = registry.histogram("lrgp.step", (0.01, 0.1))
    histogram.observe(0.005)
    histogram.observe(0.05)
    histogram.observe(5.0)
    return registry


class TestSanitize:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("lrgp.iteration", "repro_lrgp_iteration"),
            ("a-b c", "repro_a_b_c"),
            ("9lives", "repro__9lives"),
            ("", "repro__"),
        ],
    )
    def test_prometheus_charset(self, raw, expected):
        assert sanitize_metric_name(raw) == expected


class TestPrometheusText:
    def test_counter_gets_total_suffix(self, registry):
        text = to_prometheus_text(registry.snapshot())
        assert "# TYPE repro_lrgp_iterations_total counter" in text
        assert "repro_lrgp_iterations_total 5" in text

    def test_gauge_line(self, registry):
        text = to_prometheus_text(registry.snapshot())
        assert "# TYPE repro_lrgp_utility gauge" in text
        assert "repro_lrgp_utility 227.5" in text

    def test_histogram_triple_with_cumulative_buckets(self, registry):
        lines = to_prometheus_text(registry.snapshot()).splitlines()
        assert 'repro_lrgp_step_bucket{le="0.01"} 1' in lines
        assert 'repro_lrgp_step_bucket{le="0.1"} 2' in lines
        assert 'repro_lrgp_step_bucket{le="+Inf"} 3' in lines
        assert "repro_lrgp_step_count 3" in lines
        assert any(line.startswith("repro_lrgp_step_sum ") for line in lines)

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_ends_with_newline(self, registry):
        assert to_prometheus_text(registry.snapshot()).endswith("\n")


class TestJson:
    def test_versioned_schema(self, registry):
        payload = snapshot_to_dict(registry.snapshot())
        assert payload["version"] == 1
        assert payload["counters"] == {"lrgp.iterations": 5.0}
        assert payload["gauges"] == {"lrgp.utility": 227.5}
        histogram = payload["histograms"]["lrgp.step"]
        assert histogram["count"] == 3
        assert histogram["buckets"] == [[0.01, 1], [0.1, 2]]
        assert histogram["min"] == 0.005
        assert histogram["max"] == 5.0

    def test_to_json_parses_back(self, registry):
        parsed = json.loads(to_json(registry.snapshot()))
        assert parsed == snapshot_to_dict(registry.snapshot())


class TestRenderMetrics:
    def test_human_block_lists_every_metric(self, registry):
        text = render_metrics(registry.snapshot())
        assert "lrgp.iterations: 5" in text
        assert "lrgp.utility: 227.5" in text
        assert "lrgp.step: n=3" in text

    def test_empty_snapshot_message(self):
        assert "none recorded" in render_metrics(MetricsRegistry().snapshot())


class TestPhaseMetricsExport:
    """Profiler phase metrics riding the existing exporters (PR 7)."""

    def make_snapshot(self):
        import time

        from repro.obs.profile import PhaseProfiler, register_phase_metrics

        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            with profiler.phase("iteration"):
                with profiler.phase("argmax"):
                    time.sleep(0.001)
        registry = MetricsRegistry()
        register_phase_metrics(profiler.report(), registry)
        return registry.snapshot()

    def test_phase_counters_and_gauges_render_as_prometheus(self):
        text = to_prometheus_text(self.make_snapshot())
        assert "repro_profile_phase_solve_calls_total 1" in text
        assert (
            "repro_profile_phase_solve_iteration_argmax_calls_total 1" in text
        )
        assert "repro_profile_phase_solve_iteration_self_seconds" in text
        assert "repro_profile_phase_solve_total_seconds" in text
        # Dotted phase paths sanitize to valid Prometheus names.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split(" ", 1)[0].split("{", 1)[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), name

    def test_phase_metrics_appear_in_json_snapshot(self):
        payload = snapshot_to_dict(self.make_snapshot())
        assert payload["counters"]["profile.phase.solve.calls"] == 1
        assert (
            payload["gauges"]["profile.phase.solve.iteration.self_seconds"]
            > 0.0
        )

    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            (
                "profile.phase.solve.iteration.argmax.self_seconds",
                "repro_profile_phase_solve_iteration_argmax_self_seconds",
            ),
            ("profile.phase.two-stage.calls", "repro_profile_phase_two_stage_calls"),
            ("1st_phase.self_seconds", "repro__1st_phase_self_seconds"),
            ("phase with spaces", "repro_phase_with_spaces"),
        ],
    )
    def test_phase_name_edge_cases_sanitize(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    def test_awkward_phase_names_round_trip_through_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("profile.phase.2nd-try.calls").inc(3)
        registry.gauge("profile.phase.2nd-try.self_seconds").set(0.5)
        text = to_prometheus_text(registry.snapshot())
        assert "repro_profile_phase_2nd_try_calls_total 3" in text
        assert "repro_profile_phase_2nd_try_self_seconds 0.5" in text
