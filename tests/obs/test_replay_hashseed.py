"""Live-vs-replay bit-identity must not depend on ``PYTHONHASHSEED``.

The determinism contract (docs/analysis.md) promises that a captured
trace replays to the exact live state regardless of Python's per-process
hash randomization.  Hash ordering leaks into behavior through unordered
``set``/``dict`` iteration feeding message schedules or trace events —
exactly what lint rule R11 exists to catch statically.  This test is the
dynamic end of the same guard: it reruns a fault-injected asynchronous
run + replay in fresh interpreters under two different hash seeds and
asserts

* live final state == replayed final state *within* each interpreter, and
* the canonical JSON dump is *byte-identical across* the two seeds.

CI runs the whole suite under ``PYTHONHASHSEED`` 0 and 1 as matrix legs;
this test additionally proves cross-seed identity inside a single leg, so
a hash-order dependency fails loudly rather than only when the two legs'
artifacts are compared by hand.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]

#: Runs in a fresh interpreter: chaos run -> replay -> canonical JSON on
#: stdout.  Any live-vs-replay mismatch raises inside the subprocess.
_SCRIPT = """
import json
import sys

from repro.events.reliability import RetryPolicy
from repro.obs import MemorySink, Telemetry
from repro.obs.replay import ReplayEngine
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import FaultPlan
from repro.workloads.micro import micro_workload

problem = micro_workload()
plan = FaultPlan.random(
    problem, seed=7, horizon=40.0, crash_rate=0.02,
    storm_rate=0.01, partition_rate=0.01, warmup=5.0,
)
sink = MemorySink()
runtime = AsynchronousRuntime(
    problem,
    AsyncConfig(seed=3, loss_probability=0.05),
    fault_plan=plan,
    retry=RetryPolicy(timeout=2.0, max_retries=3),
    telemetry=Telemetry(sink=sink),
    trace_id="hashseed-test",
)
runtime.run_until(40.0)

final = ReplayEngine(sink.events).final()
allocation = runtime.allocation()
assert final.rates == allocation.rates, "replay rates != live rates"
assert final.populations == allocation.populations, "replay populations != live"
assert final.node_prices == runtime.node_prices(), "replay node prices != live"
assert final.link_prices == runtime.link_prices(), "replay link prices != live"
assert final.down == runtime.down_agents, "replay down-set != live"

payload = {
    "rates": dict(sorted(final.rates.items())),
    "populations": dict(sorted(final.populations.items())),
    "node_prices": dict(sorted(final.node_prices.items())),
    "link_prices": dict(sorted(final.link_prices.items())),
    "utility": final.utility,
    "down": sorted(final.down),
    "events": len(sink.events),
}
json.dump(payload, sys.stdout, sort_keys=True)
"""


def _run_leg(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"PYTHONHASHSEED={hash_seed} leg failed:\n{completed.stderr}"
    )
    return completed.stdout


class TestHashSeedIndependence:
    @pytest.fixture(scope="class")
    def legs(self):
        return {seed: _run_leg(seed) for seed in ("0", "1")}

    def test_each_leg_produces_a_converged_state(self, legs):
        for seed, output in legs.items():
            payload = json.loads(output)
            assert payload["rates"], f"seed {seed}: empty final rates"
            assert payload["events"] > 0

    def test_final_state_is_byte_identical_across_hash_seeds(self, legs):
        assert legs["0"] == legs["1"], (
            "live+replay final state depends on PYTHONHASHSEED; an "
            "unordered set/dict iteration is feeding the event stream "
            "(see lint rule R11)"
        )
