"""Tests for the Telemetry bundle and PriceProbe."""

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sinks import MemorySink, NullSink
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


class TestTelemetry:
    def test_defaults_collect_in_memory(self):
        telemetry = Telemetry()
        assert telemetry.enabled
        assert isinstance(telemetry.registry, MetricsRegistry)
        assert isinstance(telemetry.sink, MemorySink)

    def test_null_telemetry_is_disabled_and_shared(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.registry is NULL_REGISTRY
        assert isinstance(NULL_TELEMETRY.sink, NullSink)
        assert NULL_TELEMETRY.probe("node", "S") is None

    def test_close_closes_the_sink(self, tmp_path):
        from repro.obs.sinks import JsonlSink

        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry(sink=JsonlSink(path))
        telemetry.close()
        assert path.exists()


class TestPriceProbe:
    def test_price_update_emits_event_and_counter(self):
        telemetry = Telemetry()
        probe = telemetry.probe("node", "S")
        probe.price_update(0.1, 0.2, 0.05, "track", usage=10.0, capacity=20.0)
        [event] = telemetry.sink.events
        assert event.kind == "price_update"
        assert event.resource == "S"
        assert event.branch == "track"
        assert event.usage == 10.0
        snapshot = telemetry.registry.snapshot()
        assert snapshot.counters["prices.updates.node"] == 1.0

    def test_gamma_step_counts_fluctuations_only(self):
        telemetry = Telemetry()
        probe = telemetry.probe("node", "S")
        probe.gamma_step(0.1, 0.101, fluctuated=False)
        probe.gamma_step(0.101, 0.05, fluctuated=True)
        assert len(telemetry.sink.of_kind("gamma_step")) == 2
        snapshot = telemetry.registry.snapshot()
        assert snapshot.counters["gamma.fluctuations"] == 1.0
