"""Tests for the hierarchical phase profiler and its exports."""

import json
import time

import pytest

from repro.cli import BUILTIN_WORKLOADS
from repro.core.lrgp import LRGP, LRGPConfig
from repro.obs import (
    NULL_PROFILER,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullProfiler,
    PhaseProfiler,
    Telemetry,
    register_phase_metrics,
    render_report,
    to_collapsed,
    to_prometheus_text,
    to_speedscope,
)
from repro.obs.profile import _NULL_SPAN


class TestPhaseProfiler:
    def test_nested_phases_build_a_tree(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            for _ in range(3):
                with profiler.phase("iteration"):
                    with profiler.phase("argmax"):
                        pass
        report = profiler.report()
        assert [stat.dotted for stat in report.stats] == [
            "solve",
            "solve.iteration",
            "solve.iteration.argmax",
        ]
        assert report.find("solve").calls == 1
        assert report.find("solve.iteration").calls == 3
        assert report.find("solve.iteration.argmax").calls == 3

    def test_same_name_at_different_paths_is_different_buckets(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with profiler.phase("work"):
                pass
        with profiler.phase("b"):
            with profiler.phase("work"):
                pass
        dotted = [stat.dotted for stat in profiler.report().stats]
        assert dotted == ["a", "a.work", "b", "b.work"]

    def test_self_time_is_total_minus_children_and_never_negative(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            time.sleep(0.002)
            with profiler.phase("inner"):
                time.sleep(0.002)
        report = profiler.report()
        outer = report.find("outer")
        inner = report.find("outer.inner")
        assert outer.self_wall_ns == outer.wall_ns - inner.wall_ns
        assert outer.self_wall_ns >= 0
        assert inner.self_wall_ns == inner.wall_ns

    def test_self_times_sum_exactly_to_root_wall_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("root"):
            with profiler.phase("a"):
                with profiler.phase("a1"):
                    pass
            with profiler.phase("b"):
                pass
        report = profiler.report()
        assert report.total_self_wall_ns == report.total_wall_ns

    def test_span_closes_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError, match="boom"):
            with profiler.phase("solve"):
                raise RuntimeError("boom")
        assert profiler.depth == 0
        assert profiler.report().find("solve").calls == 1

    def test_depth_tracks_open_spans(self):
        profiler = PhaseProfiler()
        assert profiler.depth == 0
        with profiler.phase("a"):
            assert profiler.depth == 1
            with profiler.phase("b"):
                assert profiler.depth == 2
        assert profiler.depth == 0

    def test_reset_drops_phases(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        profiler.reset()
        assert profiler.report().empty

    def test_reset_with_open_span_raises(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            with pytest.raises(RuntimeError, match="1 span"):
                profiler.reset()

    def test_allocation_tracking_records_growth(self):
        profiler = PhaseProfiler(track_allocations=True)
        sink = []
        with profiler.phase("alloc"):
            sink.append(bytearray(256 * 1024))
        report = profiler.report()
        assert report.track_allocations
        assert report.find("alloc").alloc_bytes >= 256 * 1024
        del sink

    def test_report_to_dict_round_trips_through_json(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            with profiler.phase("iteration"):
                pass
        payload = json.loads(json.dumps(profiler.report().to_dict()))
        assert payload["version"] == 1
        assert set(payload["phases"]) == {"solve", "solve.iteration"}
        assert payload["phases"]["solve"]["calls"] == 1


class TestNullProfiler:
    def test_phase_returns_the_shared_noop_span(self):
        assert NULL_PROFILER.phase("anything") is _NULL_SPAN
        assert NULL_PROFILER.phase("other") is _NULL_SPAN

    def test_disabled_and_empty(self):
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert not NULL_PROFILER.enabled
        with NULL_PROFILER.phase("solve"):
            pass
        assert NULL_PROFILER.report().empty

    def test_null_telemetry_carries_the_null_profiler(self):
        assert NULL_TELEMETRY.profiler is NULL_PROFILER

    def test_telemetry_default_profiler_is_null(self):
        assert Telemetry().profiler is NULL_PROFILER

    def test_telemetry_accepts_a_real_profiler(self):
        profiler = PhaseProfiler()
        assert Telemetry(profiler=profiler).profiler is profiler


class TestCollapsedExport:
    def test_lines_are_semicolon_paths_with_self_ns(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            with profiler.phase("iteration"):
                time.sleep(0.001)
        text = to_collapsed(profiler.report())
        lines = text.strip().splitlines()
        assert any(line.startswith("solve;iteration ") for line in lines)
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert int(value) > 0

    def test_empty_report_renders_empty(self):
        assert to_collapsed(PhaseProfiler().report()) == ""


class TestSpeedscopeExport:
    def test_profile_is_valid_balanced_evented_json(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            for _ in range(2):
                with profiler.phase("iteration"):
                    with profiler.phase("argmax"):
                        pass
        payload = json.loads(to_speedscope(profiler.report(), name="t"))
        assert payload["$schema"].startswith("https://www.speedscope.app/")
        names = [frame["name"] for frame in payload["shared"]["frames"]]
        assert sorted(names) == ["argmax", "iteration", "solve"]
        profile = payload["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["name"] == "t"
        assert profile["unit"] == "nanoseconds"
        depth = 0
        last_at = 0
        for event in profile["events"]:
            assert event["at"] >= last_at
            last_at = event["at"]
            depth += 1 if event["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0
        assert profile["endValue"] == last_at


class TestRegisterPhaseMetrics:
    def _report(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            with profiler.phase("iteration"):
                time.sleep(0.001)
        return profiler.report()

    def test_registers_calls_counter_and_seconds_gauges(self):
        report = self._report()
        registry = MetricsRegistry()
        count = register_phase_metrics(report, registry)
        assert count == 2
        snapshot = registry.snapshot()
        assert snapshot.counters["profile.phase.solve.calls"] == 1
        assert snapshot.counters["profile.phase.solve.iteration.calls"] == 1
        total = snapshot.gauges["profile.phase.solve.total_seconds"]
        inner = snapshot.gauges["profile.phase.solve.iteration.total_seconds"]
        assert total >= inner > 0.0
        assert (
            snapshot.gauges["profile.phase.solve.iteration.self_seconds"]
            == inner
        )

    def test_re_registering_is_idempotent(self):
        report = self._report()
        registry = MetricsRegistry()
        register_phase_metrics(report, registry)
        register_phase_metrics(report, registry)
        snapshot = registry.snapshot()
        assert snapshot.counters["profile.phase.solve.calls"] == 1

    def test_phase_metrics_flow_through_prometheus_export(self):
        report = self._report()
        registry = MetricsRegistry()
        register_phase_metrics(report, registry)
        text = to_prometheus_text(registry.snapshot())
        assert "repro_profile_phase_solve_calls_total 1" in text
        assert "repro_profile_phase_solve_iteration_self_seconds" in text


class TestRenderReport:
    def test_indents_by_depth_and_totals(self):
        profiler = PhaseProfiler()
        with profiler.phase("solve"):
            with profiler.phase("iteration"):
                pass
        text = render_report(profiler.report())
        lines = text.splitlines()
        assert lines[0].startswith("phase")
        assert any(line.startswith("solve ") for line in lines)
        assert any(line.startswith("  iteration ") for line in lines)
        assert lines[-1].startswith("total ")

    def test_empty_report(self):
        assert "no phases" in render_report(PhaseProfiler().report())

    def test_allocation_column_appears_when_tracking(self):
        profiler = PhaseProfiler(track_allocations=True)
        with profiler.phase("a"):
            pass
        assert "alloc" in render_report(profiler.report())


class TestProfiledSolvesStayExact:
    """Acceptance: profiling must not change solver trajectories."""

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_profiled_trajectory_is_bit_identical(self, engine):
        problem = BUILTIN_WORKLOADS["flows-x4"]()
        plain = LRGP(problem, LRGPConfig(engine=engine))
        plain.run(60)
        profiled = LRGP(
            problem,
            LRGPConfig(
                engine=engine, telemetry=Telemetry(profiler=PhaseProfiler())
            ),
        )
        profiled.run(60)
        assert plain.utilities == profiled.utilities

    def test_phase_self_times_account_for_solve_wall_clock(self):
        """Self times on flows-x4 sum to within 2% of the measured wall."""
        problem = BUILTIN_WORKLOADS["flows-x4"]()
        profiler = PhaseProfiler()
        optimizer = LRGP(
            problem, LRGPConfig(telemetry=Telemetry(profiler=profiler))
        )
        start = time.perf_counter_ns()
        optimizer.run(100)
        measured = time.perf_counter_ns() - start
        report = profiler.report()
        assert report.total_self_wall_ns == report.total_wall_ns
        assert abs(report.total_wall_ns - measured) / measured < 0.02

    def test_solver_phase_tree_shape(self):
        problem = BUILTIN_WORKLOADS["base"]()
        profiler = PhaseProfiler()
        LRGP(problem, LRGPConfig(telemetry=Telemetry(profiler=profiler))).run(5)
        dotted = [stat.dotted for stat in profiler.report().stats]
        assert dotted == [
            "solve",
            "solve.iteration",
            "solve.iteration.argmax",
            "solve.iteration.admission",
            "solve.iteration.price_update",
        ]
