"""Tests for typed trace events: serialization and flattening."""

import io
from pathlib import Path

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    AdmissionEvent,
    AgentExchangeEvent,
    AgentRestartedEvent,
    FaultInjectedEvent,
    GammaStepEvent,
    IterationEvent,
    MessageEvent,
    PriceUpdateEvent,
    TraceEventError,
    event_from_dict,
    now_ns,
)
from repro.obs.sinks import JsonlSink, read_jsonl

FIXTURES = Path(__file__).parent / "fixtures"


def sample_events():
    """One instance of every event type, optional fields exercised."""
    return [
        IterationEvent(
            iteration=3,
            utility=227.5,
            t_ns=100,
            rates={"fa": 20.0},
            populations={"ca": 5},
            node_prices={"S": 0.03},
            link_prices={"l1": 0.0},
            gammas={"S": 0.1},
            slack={"node:S": 9.8},
        ),
        IterationEvent(iteration=4, utility=228.0, t_ns=200),  # light form
        PriceUpdateEvent(
            resource_kind="node",
            resource="S",
            old_price=0.1,
            new_price=0.2,
            step=0.05,
            branch="violation",
            t_ns=300,
            usage=210.0,
            capacity=200.0,
        ),
        GammaStepEvent(
            resource="S", old_gamma=0.1, new_gamma=0.05, fluctuated=True, t_ns=400
        ),
        AdmissionEvent(
            node="S",
            admitted={"ca": 5, "cb": 0},
            used=190.2,
            capacity=200.0,
            best_ratio=1.5,
            t_ns=500,
        ),
        MessageEvent(
            sender="src:fa",
            recipient="node:S",
            payload="RateUpdate",
            t_ns=600,
            latency=0.25,
            at=1.25,
            trace_id="sync-micro",
            span_id="s00000002",
            parent_span_id="s00000001",
        ),
        AgentExchangeEvent(
            agent="src:fa",
            role="source",
            sent=3,
            stamp=1.0,
            t_ns=700,
            trace_id="sync-micro",
            span_id="s00000001",
            parent_span_id=None,
            rate=20.0,
            price=None,
            populations=None,
        ),
        FaultInjectedEvent(fault="crash", target="node:S", at=120.0, t_ns=800),
        AgentRestartedEvent(
            agent="node:S",
            at=130.0,
            downtime=10.0,
            from_checkpoint=True,
            t_ns=900,
            price=0.25,
            populations={"ca": 5},
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("event", sample_events(), ids=lambda e: e.kind)
    def test_dict_round_trip_is_lossless(self, event):
        assert event_from_dict(event.to_dict()) == event

    def test_every_registered_type_is_covered(self):
        covered = {event.kind for event in sample_events()}
        assert covered == set(EVENT_TYPES)

    def test_jsonl_round_trip_all_types(self):
        events = sample_events()
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for event in events:
            sink.emit(event)
        sink.close()
        assert list(read_jsonl(io.StringIO(buffer.getvalue()))) == events

    def test_jsonl_file_round_trip(self, tmp_path):
        events = sample_events()
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert list(read_jsonl(path)) == events


class TestErrors:
    def test_unknown_kind_raises(self):
        with pytest.raises(TraceEventError, match="unknown event type"):
            event_from_dict({"type": "bogus"})

    def test_missing_type_raises(self):
        with pytest.raises(TraceEventError, match="unknown event type"):
            event_from_dict({"iteration": 1})

    def test_malformed_fields_raise(self):
        with pytest.raises(TraceEventError, match="malformed"):
            event_from_dict({"type": "gamma_step", "nonsense": 1})


class TestFlatten:
    def test_iteration_flatten_uses_documented_prefixes(self):
        flat = sample_events()[0].flatten()
        assert flat["type"] == "iteration"
        assert flat["rate:fa"] == 20.0
        assert flat["n:ca"] == 5
        assert flat["node_price:S"] == 0.03
        assert flat["link_price:l1"] == 0.0
        assert flat["gamma:S"] == 0.1
        assert flat["slack:node:S"] == 9.8

    def test_light_iteration_flatten_has_no_snapshot_columns(self):
        flat = IterationEvent(iteration=1, utility=2.0, t_ns=3).flatten()
        assert set(flat) == {"type", "iteration", "utility", "t_ns"}

    def test_generic_flatten_expands_dicts(self):
        flat = sample_events()[4].flatten()  # admission
        assert flat["admitted:ca"] == 5
        assert flat["admitted:cb"] == 0
        assert flat["node"] == "S"

    def test_untraced_message_flatten_omits_causal_columns(self):
        # Optional v2 fields must disappear from flatten() when unset so
        # pinned CSV columns written against the v1 schema keep working.
        flat = MessageEvent("a", "b", "RateUpdate", t_ns=1, latency=0.5).flatten()
        assert set(flat) == {"type", "sender", "recipient", "payload", "t_ns", "latency"}

    def test_traced_message_flatten_carries_causal_columns(self):
        flat = sample_events()[5].flatten()
        assert flat["trace_id"] == "sync-micro"
        assert flat["span_id"] == "s00000002"
        assert flat["parent_span_id"] == "s00000001"
        assert flat["at"] == 1.25

    def test_untraced_exchange_flatten_matches_v1_schema(self):
        flat = AgentExchangeEvent(
            agent="src:fa", role="source", sent=3, stamp=1.0, t_ns=1
        ).flatten()
        assert set(flat) == {"type", "agent", "role", "sent", "stamp", "t_ns"}


class TestSchemaVersioning:
    """v2 captures carry causal/state fields; v1 captures must still parse."""

    V1_FIXTURE = FIXTURES / "trace_v1.jsonl"

    def test_schema_version_is_two(self):
        assert TRACE_SCHEMA_VERSION == 2

    def test_v1_fixture_parses_into_typed_events(self):
        events = list(read_jsonl(self.V1_FIXTURE))
        assert [event.kind for event in events] == [
            "iteration",
            "iteration",
            "price_update",
            "gamma_step",
            "admission",
            "message",
            "agent_exchange",
            "fault_injected",
            "agent_restarted",
        ]

    def test_v1_events_default_every_v2_field_to_none(self):
        events = {event.kind: event for event in read_jsonl(self.V1_FIXTURE)}
        message = events["message"]
        assert (message.at, message.trace_id, message.span_id) == (None, None, None)
        assert message.parent_span_id is None
        exchange = events["agent_exchange"]
        assert exchange.trace_id is None
        assert exchange.span_id is None
        assert exchange.rate is None
        assert exchange.price is None
        assert exchange.populations is None
        restarted = events["agent_restarted"]
        assert restarted.rate is None
        assert restarted.price is None
        assert restarted.populations is None
        assert events["iteration"].at is None

    def test_v1_events_flatten_without_v2_columns(self):
        v2_only = {
            "trace_id", "span_id", "parent_span_id", "rate", "price",
        }
        for event in read_jsonl(self.V1_FIXTURE):
            if event.kind in {"message", "agent_exchange", "agent_restarted"}:
                assert not (set(event.flatten()) & v2_only), event.kind

    def test_v1_events_round_trip_through_v2_serializer(self):
        events = list(read_jsonl(self.V1_FIXTURE))
        for event in events:
            assert event_from_dict(event.to_dict()) == event


def test_now_ns_is_monotonic():
    first = now_ns()
    second = now_ns()
    assert second >= first
