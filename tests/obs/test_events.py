"""Tests for typed trace events: serialization and flattening."""

import io

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    AdmissionEvent,
    AgentExchangeEvent,
    AgentRestartedEvent,
    FaultInjectedEvent,
    GammaStepEvent,
    IterationEvent,
    MessageEvent,
    PriceUpdateEvent,
    TraceEventError,
    event_from_dict,
    now_ns,
)
from repro.obs.sinks import JsonlSink, read_jsonl


def sample_events():
    """One instance of every event type, optional fields exercised."""
    return [
        IterationEvent(
            iteration=3,
            utility=227.5,
            t_ns=100,
            rates={"fa": 20.0},
            populations={"ca": 5},
            node_prices={"S": 0.03},
            link_prices={"l1": 0.0},
            gammas={"S": 0.1},
            slack={"node:S": 9.8},
        ),
        IterationEvent(iteration=4, utility=228.0, t_ns=200),  # light form
        PriceUpdateEvent(
            resource_kind="node",
            resource="S",
            old_price=0.1,
            new_price=0.2,
            step=0.05,
            branch="violation",
            t_ns=300,
            usage=210.0,
            capacity=200.0,
        ),
        GammaStepEvent(
            resource="S", old_gamma=0.1, new_gamma=0.05, fluctuated=True, t_ns=400
        ),
        AdmissionEvent(
            node="S",
            admitted={"ca": 5, "cb": 0},
            used=190.2,
            capacity=200.0,
            best_ratio=1.5,
            t_ns=500,
        ),
        MessageEvent(
            sender="src:fa",
            recipient="node:S",
            payload="RateUpdate",
            t_ns=600,
            latency=0.25,
        ),
        AgentExchangeEvent(agent="src:fa", role="source", sent=3, stamp=1.0, t_ns=700),
        FaultInjectedEvent(fault="crash", target="node:S", at=120.0, t_ns=800),
        AgentRestartedEvent(
            agent="node:S", at=130.0, downtime=10.0, from_checkpoint=True, t_ns=900
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("event", sample_events(), ids=lambda e: e.kind)
    def test_dict_round_trip_is_lossless(self, event):
        assert event_from_dict(event.to_dict()) == event

    def test_every_registered_type_is_covered(self):
        covered = {event.kind for event in sample_events()}
        assert covered == set(EVENT_TYPES)

    def test_jsonl_round_trip_all_types(self):
        events = sample_events()
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for event in events:
            sink.emit(event)
        sink.close()
        assert list(read_jsonl(io.StringIO(buffer.getvalue()))) == events

    def test_jsonl_file_round_trip(self, tmp_path):
        events = sample_events()
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        assert list(read_jsonl(path)) == events


class TestErrors:
    def test_unknown_kind_raises(self):
        with pytest.raises(TraceEventError, match="unknown event type"):
            event_from_dict({"type": "bogus"})

    def test_missing_type_raises(self):
        with pytest.raises(TraceEventError, match="unknown event type"):
            event_from_dict({"iteration": 1})

    def test_malformed_fields_raise(self):
        with pytest.raises(TraceEventError, match="malformed"):
            event_from_dict({"type": "gamma_step", "nonsense": 1})


class TestFlatten:
    def test_iteration_flatten_uses_documented_prefixes(self):
        flat = sample_events()[0].flatten()
        assert flat["type"] == "iteration"
        assert flat["rate:fa"] == 20.0
        assert flat["n:ca"] == 5
        assert flat["node_price:S"] == 0.03
        assert flat["link_price:l1"] == 0.0
        assert flat["gamma:S"] == 0.1
        assert flat["slack:node:S"] == 9.8

    def test_light_iteration_flatten_has_no_snapshot_columns(self):
        flat = IterationEvent(iteration=1, utility=2.0, t_ns=3).flatten()
        assert set(flat) == {"type", "iteration", "utility", "t_ns"}

    def test_generic_flatten_expands_dicts(self):
        flat = sample_events()[4].flatten()  # admission
        assert flat["admitted:ca"] == 5
        assert flat["admitted:cb"] == 0
        assert flat["node"] == "S"


def test_now_ns_is_monotonic():
    first = now_ns()
    second = now_ns()
    assert second >= first
