"""Tests for span-based causal tracing and convergence attribution.

Unit coverage for the :class:`CausalContext` allocator and the
:class:`CausalGraph` reconstruction, plus the PR's acceptance criterion
as an integration test: on a live run (synchronous and fault-injected
asynchronous) the critical path is non-empty and its total latency
accounts for the full measured time-to-stability.
"""

import pytest

from repro.events.reliability import RetryPolicy
from repro.obs import MemorySink, Telemetry
from repro.obs.causal import (
    CausalContext,
    CausalGraph,
    render_causal_report,
)
from repro.obs.events import AgentExchangeEvent, IterationEvent, MessageEvent
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import FaultPlan
from repro.runtime.synchronous import SynchronousRuntime


class TestCausalContext:
    def test_span_ids_are_sequential_and_deterministic(self):
        tracer = CausalContext("t")
        assert [tracer.allocate() for _ in range(3)] == [
            "s00000001", "s00000002", "s00000003",
        ]
        again = CausalContext("t")
        assert again.allocate() == "s00000001"  # no entropy, ever

    def test_cold_activation_is_a_root_span(self):
        tracer = CausalContext("t")
        span = tracer.begin_activation("src:fa")
        assert span.trace_id == "t"
        assert span.span_id == "s00000001"
        assert span.parent_span_id is None

    def test_activation_parents_on_last_delivered_message(self):
        tracer = CausalContext("t")
        sender_span = tracer.begin_activation("src:fa")
        message_span, message_parent = tracer.message_context("src:fa")
        assert message_parent == sender_span.span_id
        tracer.record_delivery("node:S", message_span)
        activation = tracer.begin_activation("node:S")
        assert activation.parent_span_id == message_span

    def test_unrecorded_delivery_leaves_recipient_cold(self):
        tracer = CausalContext("t")
        tracer.record_delivery("node:S", None)  # untraced message
        assert tracer.begin_activation("node:S").parent_span_id is None


def synthetic_capture():
    """Three-hop causal chain plus an off-path fast message.

    src activates at t=0 (root), its message reaches the node at t=2, the
    node activates at t=2, its message reaches a sink at t=5.  A second,
    faster message (t=1) also lands at the node before it acts — the
    critical path must pick the *latest*-arriving input (t=2 wins only
    for the node's second activation; for the first it is the slow one).
    Utilities stabilize immediately with window 2.
    """
    return [
        AgentExchangeEvent(
            agent="src:fa", role="source", sent=1, stamp=0.0, t_ns=1,
            trace_id="t", span_id="s00000001", parent_span_id=None,
        ),
        MessageEvent(
            sender="src:fb", recipient="node:S", payload="RateUpdate",
            t_ns=2, latency=1.0, at=1.0,
            trace_id="t", span_id="s00000002", parent_span_id=None,
        ),
        MessageEvent(
            sender="src:fa", recipient="node:S", payload="RateUpdate",
            t_ns=3, latency=2.0, at=2.0,
            trace_id="t", span_id="s00000003", parent_span_id="s00000001",
        ),
        AgentExchangeEvent(
            agent="node:S", role="node", sent=1, stamp=2.0, t_ns=4,
            trace_id="t", span_id="s00000004", parent_span_id="s00000003",
        ),
        MessageEvent(
            sender="node:S", recipient="link:up", payload="PriceUpdate",
            t_ns=5, latency=3.0, at=5.0,
            trace_id="t", span_id="s00000005", parent_span_id="s00000004",
        ),
        IterationEvent(iteration=1, utility=100.0, t_ns=6, at=5.0),
        IterationEvent(iteration=2, utility=100.0, t_ns=7, at=6.0),
    ]


class TestCausalGraphUnit:
    def test_reconstructs_every_span(self):
        graph = CausalGraph(synthetic_capture())
        assert set(graph.spans) == {f"s0000000{i}" for i in range(1, 6)}
        assert graph.events_seen == 7
        assert graph.iterations == 2

    def test_parent_and_root_queries(self):
        graph = CausalGraph(synthetic_capture())
        parents = graph.parents("s00000004")
        assert {span.span_id for span in parents} >= {"s00000003"}
        roots = {span.span_id for span in graph.roots()}
        assert "s00000001" in roots

    def test_span_of_event_maps_capture_positions(self):
        graph = CausalGraph(synthetic_capture())
        span = graph.span_of_event(3)
        assert span is not None
        assert span.span_id == "s00000004"
        assert graph.span_of_event(5) is None  # iteration samples have no span

    def test_critical_path_walks_latest_arriving_inputs(self):
        graph = CausalGraph(synthetic_capture())
        path = graph.critical_path(window=2, rel_amplitude=0.01)
        assert path is not None
        ids = [hop.span.span_id for hop in path.hops]
        # src activation -> slow message -> node activation -> price message.
        assert ids == ["s00000001", "s00000003", "s00000004", "s00000005"]
        assert path.stable_iteration == 2
        assert path.stable_at == 6.0
        assert path.start == 0.0
        # Telescoping waits: total latency IS the time to stability.
        assert path.total_latency == pytest.approx(path.time_to_stability)
        assert path.time_to_stability == 6.0

    def test_v1_capture_without_spans_has_no_path(self):
        events = [
            IterationEvent(iteration=1, utility=5.0, t_ns=1),
            IterationEvent(iteration=2, utility=5.0, t_ns=2),
        ]
        graph = CausalGraph(events)
        assert graph.spans == {}
        assert graph.critical_path(window=2, rel_amplitude=0.01) is None

    def test_unstable_utilities_have_no_path(self):
        events = synthetic_capture()[:-1] + [
            IterationEvent(iteration=2, utility=500.0, t_ns=7, at=6.0)
        ]
        assert CausalGraph(events).critical_path(window=2, rel_amplitude=0.01) is None


class TestBlameUnit:
    def test_drop_is_attributed_to_the_reversing_resource(self):
        from repro.obs.events import PriceUpdateEvent

        events = [
            IterationEvent(iteration=1, utility=100.0, t_ns=1),
            PriceUpdateEvent("node", "S", 0.1, 0.2, 0.05, "violation", t_ns=2),
            IterationEvent(iteration=2, utility=110.0, t_ns=3),
            # Reversal: price steps down after stepping up.
            PriceUpdateEvent("node", "S", 0.2, 0.15, 0.05, "slack", t_ns=4),
            IterationEvent(iteration=3, utility=104.0, t_ns=5),
        ]
        report, unattributed = CausalGraph(events).blame()
        assert unattributed == 0.0
        assert len(report) == 1
        entry = report[0]
        assert entry.resource == "node:S"
        assert entry.oscillations == 1
        assert entry.updates == 2
        assert entry.blame == pytest.approx(6.0)
        assert entry.share == pytest.approx(1.0)

    def test_drop_without_reversal_is_unattributed(self):
        events = [
            IterationEvent(iteration=1, utility=100.0, t_ns=1),
            IterationEvent(iteration=2, utility=90.0, t_ns=2),
        ]
        report, unattributed = CausalGraph(events).blame()
        assert report == []
        assert unattributed == pytest.approx(10.0)


@pytest.fixture(scope="module")
def sync_capture():
    from tests.conftest import make_tiny_problem

    problem = make_tiny_problem()
    sink = MemorySink()
    runtime = SynchronousRuntime(
        problem, telemetry=Telemetry(sink=sink), trace_id="sync-test"
    )
    runtime.run(120)
    return sink.events


@pytest.fixture(scope="module")
def chaos_capture():
    from tests.conftest import make_tiny_problem

    problem = make_tiny_problem()
    plan = FaultPlan.random(
        problem, seed=7, horizon=80.0, crash_rate=0.02,
        storm_rate=0.01, partition_rate=0.01, warmup=5.0,
    )
    sink = MemorySink()
    runtime = AsynchronousRuntime(
        problem,
        AsyncConfig(seed=3, loss_probability=0.05),
        fault_plan=plan,
        retry=RetryPolicy(timeout=2.0, max_retries=3),
        telemetry=Telemetry(sink=sink),
        trace_id="chaos-test",
    )
    runtime.run_until(80.0)
    return sink.events


class TestLiveRunAcceptance:
    """The PR's acceptance criterion, on real runtime captures."""

    def test_sync_critical_path_accounts_for_time_to_stability(self, sync_capture):
        graph = CausalGraph(sync_capture)
        assert graph.spans  # runtime actually stamped its messages
        path = graph.critical_path()
        assert path is not None
        assert path.hops  # non-empty critical path
        assert path.total_latency == pytest.approx(path.time_to_stability)
        assert path.total_latency >= path.time_to_stability - 1e-9

    def test_chaos_critical_path_accounts_for_time_to_stability(self, chaos_capture):
        graph = CausalGraph(chaos_capture)
        path = graph.critical_path()
        assert path is not None
        assert path.hops
        assert path.total_latency == pytest.approx(path.time_to_stability)
        assert path.total_latency >= path.time_to_stability - 1e-9

    def test_hops_form_a_parent_chain_in_time_order(self, sync_capture):
        path = CausalGraph(sync_capture).critical_path()
        assert path is not None
        times = [hop.span.at for hop in path.hops]
        assert times == sorted(times)
        assert all(hop.wait >= 0.0 for hop in path.hops)
        assert path.closing_wait >= 0.0

    def test_by_agent_decomposes_the_hop_waits(self, sync_capture):
        path = CausalGraph(sync_capture).critical_path()
        assert path is not None
        per_agent = path.by_agent()
        assert sum(per_agent.values()) == pytest.approx(
            sum(hop.wait for hop in path.hops)
        )

    def test_chaos_blame_report_sees_price_activity(self, chaos_capture):
        report, unattributed = CausalGraph(chaos_capture).blame()
        assert report  # prices moved during the chaos run
        assert all(entry.updates >= entry.oscillations for entry in report)
        shares = sum(entry.share for entry in report)
        assert shares == pytest.approx(1.0) or shares == 0.0
        assert unattributed >= 0.0

    def test_to_dict_is_json_ready(self, sync_capture):
        import json

        payload = CausalGraph(sync_capture).to_dict()
        assert payload["spans"] > 0
        assert payload["critical_path"] is not None
        json.dumps(payload)  # must not raise

    def test_report_renders_path_and_blame(self, chaos_capture):
        graph = CausalGraph(chaos_capture)
        text = render_causal_report(graph)
        assert "critical path" in text
        assert "time-to-stability" in text
