"""Tests for the incremental solution state.

The critical invariant: after any sequence of moves, the incrementally
maintained utility and usages equal a from-scratch recomputation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.incremental import IncrementalState
from repro.baselines.moves import MoveProposer
from repro.model.allocation import (
    link_usage,
    node_usage,
    total_utility,
    violations,
    zero_allocation,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


def assert_consistent(problem, state):
    """Incremental caches match a full recomputation."""
    allocation = state.allocation()
    assert state.utility == pytest.approx(
        total_utility(problem, allocation), abs=1e-6
    )
    for node_id in problem.nodes:
        assert state.node_used[node_id] == pytest.approx(
            node_usage(problem, allocation, node_id), abs=1e-6
        )
    for link_id in problem.links:
        assert state.link_used[link_id] == pytest.approx(
            link_usage(problem, allocation, link_id), abs=1e-6
        )


class TestInitialization:
    def test_zero_allocation(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        assert state.utility == 0.0
        assert_consistent(problem, state)


class TestRateMoves:
    def test_feasible_move_evaluates_and_applies(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        state.apply(state.evaluate_population_move("ca", 2))
        move = state.evaluate_rate_move("fa", 10.0)
        assert move is not None
        assert move.utility_delta > 0.0
        state.apply(move)
        assert_consistent(problem, state)

    def test_out_of_bounds_rejected(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        assert state.evaluate_rate_move("fa", 0.5) is None
        assert state.evaluate_rate_move("fa", 25.0) is None

    def test_capacity_violating_increase_rejected(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        for class_id in ("ca", "cb", "cc"):
            state.apply(state.evaluate_population_move(class_id, 5))
        # Nodes nearly full at rate_min; a big rate jump must be rejected.
        assert state.evaluate_rate_move("fa", 20.0) is None

    def test_decrease_always_feasible(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        state.apply(state.evaluate_rate_move("fa", 10.0))
        move = state.evaluate_rate_move("fa", 2.0)
        assert move is not None


class TestPopulationMoves:
    def test_bounds_enforced(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        assert state.evaluate_population_move("ca", 6) is None
        assert state.evaluate_population_move("ca", -1) is None

    def test_capacity_enforced(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        state.apply(state.evaluate_rate_move("fa", 20.0))
        # Capacity 2000, fa at 20: ~9 consumer slots; 5 of ca is fine,
        # but then 5 of cb (another 1000) is not.
        state.apply(state.evaluate_population_move("ca", 5))
        assert state.evaluate_population_move("cb", 5) is None

    def test_utility_delta_exact(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        move = state.evaluate_population_move("ca", 3)
        before = state.utility
        state.apply(move)
        assert state.utility == pytest.approx(before + move.utility_delta)
        assert_consistent(problem, state)


class TestSwapMoves:
    def test_swap_transfers_budget(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        state.apply(state.evaluate_rate_move("fa", 20.0))
        state.apply(state.evaluate_rate_move("fb", 20.0))
        state.apply(state.evaluate_population_move("cb", 5))
        move = state.evaluate_swap_move("cb", "ca", evict=3)
        assert move is not None
        state.apply(move)
        assert state.populations["cb"] == 2
        assert state.populations["ca"] > 0
        assert_consistent(problem, state)

    def test_swap_requires_colocated_distinct_classes(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        assert state.evaluate_swap_move("ca", "ca", 1) is None

    def test_swap_requires_evictable_population(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        assert state.evaluate_swap_move("ca", "cb", 1) is None


class TestRateMoveWithEviction:
    def test_falls_back_to_plain_when_feasible(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        move = state.evaluate_rate_move_with_eviction("fa", 5.0)
        assert move is not None
        assert not hasattr(move, "moves")  # plain RateMove

    def test_evicts_to_fit(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        for class_id in ("ca", "cb", "cc"):
            state.apply(state.evaluate_population_move(class_id, 5))
        # Plain move impossible...
        assert state.evaluate_rate_move("fa", 20.0) is None
        # ...but eviction makes room.
        move = state.evaluate_rate_move_with_eviction("fa", 20.0)
        assert move is not None
        state.apply(move)
        assert state.rates["fa"] == 20.0
        assert_consistent(problem, state)
        assert not violations(problem, state.allocation())

    def test_evicts_cheapest_value_first(self, problem):
        state = IncrementalState(problem, zero_allocation(problem))
        for class_id in ("ca", "cb", "cc"):
            state.apply(state.evaluate_population_move(class_id, 5))
        move = state.evaluate_rate_move_with_eviction("fa", 20.0)
        state.apply(move)
        # cb (scale 2) is the worst ratio at S; it should lose members
        # before ca (scale 10).
        assert state.populations["cb"] < 5
        assert state.populations["ca"] == 5


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_walk_stays_consistent_and_feasible(seed):
    """Property: any accepted random-move sequence preserves cache
    consistency and feasibility."""
    problem = make_tiny_problem()
    state = IncrementalState(problem, zero_allocation(problem))
    proposer = MoveProposer(problem, random.Random(seed))
    for _ in range(300):
        move = proposer.propose(state)
        if move is not None:
            state.apply(move)
    assert_consistent(problem, state)
    assert not violations(problem, state.allocation())
