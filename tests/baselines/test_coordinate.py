"""Tests for the centralized block-coordinate baseline."""

import pytest

from repro.baselines.coordinate import (
    alternating_optimization,
    multistart_alternating,
)
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible, total_utility
from repro.workloads.bottleneck import link_bottleneck_workload
from repro.workloads.micro import micro_workload


class TestAlternatingOptimization:
    def test_result_feasible(self, base_problem):
        result = alternating_optimization(base_problem)
        assert is_feasible(base_problem, result.best_allocation)
        assert result.converged

    def test_utility_matches_allocation(self, tiny_problem):
        result = alternating_optimization(tiny_problem)
        assert result.best_utility == pytest.approx(
            total_utility(tiny_problem, result.best_allocation), rel=1e-9
        )

    def test_monotone_nonworsening_from_any_start(self, tiny_problem):
        from repro.model.allocation import Allocation

        start = Allocation(rates={"fa": 10.0, "fb": 3.0}, populations={})
        result = alternating_optimization(tiny_problem, initial=start)
        # The first population stage alone gives some baseline; the
        # alternation can only improve from there.
        assert result.best_utility > 0.0
        assert result.converged

    def test_max_stages_validation(self, tiny_problem):
        with pytest.raises(ValueError):
            alternating_optimization(tiny_problem, max_stages=0)


class TestLRGPCertificate:
    def test_lrgp_solution_is_a_fixpoint(self, base_problem, converged_lrgp):
        """Running the exact alternation from LRGP's solution must not
        improve it (beyond solver noise) — LRGP's output is partially
        optimal in both blocks."""
        result = alternating_optimization(
            base_problem, initial=converged_lrgp.allocation()
        )
        assert result.best_utility <= converged_lrgp.utilities[-1] * 1.002
        assert result.stages <= 2

    def test_lrgp_beats_cold_start_alternation(self, base_problem, converged_lrgp):
        """The headline finding: without the price linkage, alternation
        lands in a worse partial optimum."""
        cold = alternating_optimization(base_problem)
        assert converged_lrgp.utilities[-1] > 1.05 * cold.best_utility

    def test_lrgp_at_least_matches_multistart(self, base_problem, converged_lrgp):
        best = multistart_alternating(base_problem, starts=6, seed=0)
        assert converged_lrgp.utilities[-1] >= 0.99 * best.best_utility

    def test_exact_match_on_link_bottleneck(self):
        """On the uplink workload (everyone admitted, pure rate problem)
        alternation and LRGP find the same optimum."""
        problem = link_bottleneck_workload(link_capacity=100.0)
        coordinate = alternating_optimization(problem)
        optimizer = LRGP(problem, LRGPConfig(link_gamma=0.5))
        optimizer.run(600)
        assert optimizer.utilities[-1] == pytest.approx(
            coordinate.best_utility, rel=1e-3
        )


class TestMultistart:
    def test_multistart_at_least_single_start(self):
        problem = micro_workload()
        single = alternating_optimization(problem)
        multi = multistart_alternating(problem, starts=4, seed=1)
        assert multi.best_utility >= single.best_utility * 0.999

    def test_deterministic_given_seed(self):
        problem = micro_workload()
        a = multistart_alternating(problem, starts=3, seed=5)
        b = multistart_alternating(problem, starts=3, seed=5)
        assert a.best_utility == b.best_utility

    def test_validation(self):
        with pytest.raises(ValueError):
            multistart_alternating(micro_workload(), starts=0)
