"""Tests for the simulated-annealing baseline."""


import pytest

from repro.baselines.annealing import (
    COOLING_FACTOR,
    PAPER_START_TEMPERATURES,
    PAPER_STEP_LIMITS,
    AnnealingConfig,
    best_of_temperatures,
    simulated_annealing,
    temperature_levels,
)
from repro.model.allocation import is_feasible, total_utility


class TestCoolingSchedule:
    def test_paper_constants(self):
        assert PAPER_START_TEMPERATURES == (5.0, 10.0, 50.0, 100.0)
        assert PAPER_STEP_LIMITS == (10**6, 10**7, 10**8)
        assert COOLING_FACTOR == 0.999

    def test_temperature_levels_matches_formula(self):
        # T * 0.999^k <= 1  ->  k >= log(T)/-log(0.999)
        for start in (5.0, 10.0, 50.0, 100.0):
            levels = temperature_levels(start)
            assert start * COOLING_FACTOR ** levels <= 1.0
            assert start * COOLING_FACTOR ** (levels - 1) > 1.0

    def test_start_at_or_below_one(self):
        assert temperature_levels(1.0) == 1
        assert temperature_levels(0.5) == 1


class TestSimulatedAnnealing:
    def test_result_is_feasible(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=5.0, max_steps=20_000)
        )
        assert is_feasible(tiny_problem, result.best_allocation)

    def test_best_utility_matches_allocation(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=5.0, max_steps=20_000)
        )
        assert result.best_utility == pytest.approx(
            total_utility(tiny_problem, result.best_allocation), rel=1e-9
        )

    def test_improves_over_start(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=5.0, max_steps=20_000)
        )
        assert result.best_utility > 0.0

    def test_deterministic_given_seed(self, tiny_problem):
        config = AnnealingConfig(start_temperature=5.0, max_steps=5_000, seed=9)
        first = simulated_annealing(tiny_problem, config)
        second = simulated_annealing(tiny_problem, config)
        assert first.best_utility == second.best_utility
        assert first.accepted == second.accepted

    def test_respects_step_budget(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=100.0, max_steps=1_000)
        )
        assert result.steps == 1_000

    def test_best_never_below_final(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=50.0, max_steps=10_000)
        )
        assert result.best_utility >= result.final_utility - 1e-9

    def test_acceptance_rate_bounded(self, tiny_problem):
        result = simulated_annealing(
            tiny_problem, AnnealingConfig(start_temperature=5.0, max_steps=5_000)
        )
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnnealingConfig(start_temperature=0.0)
        with pytest.raises(ValueError):
            AnnealingConfig(max_steps=0)


class TestBestOfTemperatures:
    def test_returns_best_run(self, tiny_problem):
        best = best_of_temperatures(tiny_problem, max_steps=5_000, seed=2)
        for index, start in enumerate(PAPER_START_TEMPERATURES):
            single = simulated_annealing(
                tiny_problem,
                AnnealingConfig(
                    start_temperature=start, max_steps=5_000, seed=2 + index
                ),
            )
            assert best.best_utility >= single.best_utility - 1e-9


class TestAgainstLRGP:
    def test_lrgp_beats_sa_on_base_workload(self, base_problem, converged_lrgp):
        """The paper's headline comparison (Table 2, row 1): LRGP finds
        higher utility than budgeted SA."""
        sa = simulated_annealing(
            base_problem,
            AnnealingConfig(start_temperature=5.0, max_steps=100_000, seed=1),
        )
        assert converged_lrgp.utilities[-1] > sa.best_utility

    def test_sa_reaches_reasonable_fraction_of_lrgp(
        self, base_problem, converged_lrgp
    ):
        """SA is a credible baseline: with a modest budget it lands within
        2x of LRGP, not orders of magnitude below."""
        sa = simulated_annealing(
            base_problem,
            AnnealingConfig(start_temperature=5.0, max_steps=100_000, seed=1),
        )
        assert sa.best_utility > 0.5 * converged_lrgp.utilities[-1]
