"""Tests for local search, random search, exhaustive search and bounds."""

import pytest

from repro.baselines.bounds import (
    capacity_density_bound,
    demand_bound,
    utility_upper_bound,
)
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.local_search import (
    greedy_fixed_rates,
    hill_climb,
    random_search,
)
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


class TestHillClimb:
    def test_feasible_and_positive(self, problem):
        result = hill_climb(problem, max_steps=20_000, seed=0)
        assert is_feasible(problem, result.best_allocation)
        assert result.best_utility > 0.0

    def test_deterministic(self, problem):
        a = hill_climb(problem, max_steps=5_000, seed=3)
        b = hill_climb(problem, max_steps=5_000, seed=3)
        assert a.best_utility == b.best_utility

    def test_rejects_bad_steps(self, problem):
        with pytest.raises(ValueError):
            hill_climb(problem, max_steps=0)


class TestRandomSearch:
    def test_feasible_and_positive(self, problem):
        result = random_search(problem, samples=200, seed=0)
        assert is_feasible(problem, result.best_allocation)
        assert result.best_utility > 0.0

    def test_more_samples_never_worse(self, problem):
        few = random_search(problem, samples=50, seed=0)
        many = random_search(problem, samples=500, seed=0)
        assert many.best_utility >= few.best_utility

    def test_rejects_bad_samples(self, problem):
        with pytest.raises(ValueError):
            random_search(problem, samples=0)


class TestGreedyFixedRates:
    def test_matches_lrgp_admission_at_same_rates(self, problem):
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(200)
        rates = optimizer.allocation().rates
        greedy = greedy_fixed_rates(problem, rates)
        # Same rates + same greedy fill = same utility as LRGP's final.
        assert greedy.best_utility == pytest.approx(
            optimizer.utilities[-1], rel=1e-9
        )


class TestExhaustive:
    def test_finds_feasible_optimum(self, problem):
        result = exhaustive_search(problem, rate_grid_points=4, max_populations=6)
        assert is_feasible(problem, result.best_allocation)
        assert result.evaluated > 0

    def test_lrgp_at_least_matches_grid_optimum(self, problem):
        """LRGP (a heuristic — the paper proves no optimality) should land
        within half a percent of the exhaustive grid optimum."""
        grid = exhaustive_search(problem, rate_grid_points=5, max_populations=6)
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(400)
        assert optimizer.utilities[-1] >= grid.best_utility * 0.995

    def test_rejects_bad_grid(self, problem):
        with pytest.raises(ValueError):
            exhaustive_search(problem, rate_grid_points=1)


class TestBounds:
    def test_demand_bound_formula(self, problem):
        import math
        expected = (
            5 * 10.0 * math.log(21.0)
            + 5 * 2.0 * math.log(21.0)
            + 5 * 5.0 * math.log(21.0)
        )
        assert demand_bound(problem) == pytest.approx(expected)

    def test_capacity_bound_no_larger_than_demand_under_scarcity(self):
        starved = make_tiny_problem(capacity=50.0)
        assert capacity_density_bound(starved) < demand_bound(starved)

    def test_bounds_dominate_lrgp(self, problem):
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(300)
        assert optimizer.utilities[-1] <= utility_upper_bound(problem) * 1.001

    def test_bounds_dominate_lrgp_on_base_workload(
        self, base_problem, converged_lrgp
    ):
        assert converged_lrgp.utilities[-1] <= utility_upper_bound(base_problem)

    def test_bounds_dominate_exhaustive(self, problem):
        grid = exhaustive_search(problem, rate_grid_points=4, max_populations=5)
        assert grid.best_utility <= utility_upper_bound(problem) * 1.001
