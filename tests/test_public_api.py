"""Tests of the top-level public API surface.

A downstream user should be able to drive everything advertised in the
README through ``import repro`` — this pins that surface so refactors
cannot silently break it.
"""

import warnings

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_surface(self):
        problem = repro.base_workload()
        result = repro.solve(problem, method="lrgp", iterations=30)
        assert isinstance(result, repro.SolveResult)
        assert result.utility > 0.0
        assert repro.is_feasible(problem, result.allocation)
        assert repro.violations(problem, result.allocation) == []

    def test_stepwise_driver_surface(self):
        problem = repro.base_workload()
        optimizer = repro.LRGP(problem, repro.LRGPConfig.adaptive())
        optimizer.run(30)
        allocation = optimizer.allocation()
        assert repro.is_feasible(problem, allocation)
        assert repro.total_utility(problem, allocation) > 0.0

    def test_solve_surface(self):
        problem = repro.micro_workload()
        assert set(repro.available_methods()) >= {
            "lrgp",
            "multirate",
            "two_stage",
            "annealing",
            "hill_climb",
            "random_search",
            "coordinate",
        }
        result = repro.solve(
            problem, method="lrgp", engine="vectorized", iterations=40
        )
        # micro_workload sits below the vectorized crossover, so solve()
        # dispatches to the reference engine and records the substitution.
        assert result.engine == "reference"
        assert result.metadata["engine_fallback"]["requested"] == "vectorized"
        assert result.converged_at is None or result.converged_at <= 40
        assert result.to_dict()["method"] == "lrgp"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_workload_builders_exported(self):
        assert repro.micro_workload().describe().startswith("2 flows")
        assert len(repro.scale_flows(2).flows) == 12
        assert repro.link_bottleneck_workload(50.0).bottleneck_links() == (
            "uplink",
        )
        assert len(repro.generate_workload(seed=1).flows) == 6

    def test_optimizers_exported(self):
        problem = repro.micro_workload()
        multi = repro.MultirateLRGP(problem)
        multi.run(20)
        assert multi.utilities[-1] > 0.0
        result = repro.two_stage_optimize(problem, iterations=30)
        assert result.stage2_utility >= 0.0

    def test_workload_registry_is_the_front_door(self):
        assert set(repro.list_workloads()) >= {
            "micro",
            "base",
            "flows",
            "cnodes",
            "tree",
            "bottleneck",
            "generated",
        }
        by_name = repro.get_workload("tree", depth=2, flows=2)
        by_spec = repro.workload_from_spec("tree:depth=2,flows=2")
        assert by_name.describe() == by_spec.describe()

    def test_package_ships_type_marker(self):
        from pathlib import Path

        package_dir = Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()


class TestDeprecatedWorkloadSpellings:
    """The pre-registry names keep working, but only under a warning."""

    DEPRECATED = {
        "base-pow25": "base:shape=pow25",
        "base-pow50": "base:shape=pow50",
        "base-pow75": "base:shape=pow75",
        "link-bottleneck": "bottleneck",
    }

    @pytest.mark.parametrize(
        ("old", "replacement"), sorted(DEPRECATED.items())
    )
    def test_old_spelling_warns_and_still_builds(self, old, replacement):
        with pytest.warns(DeprecationWarning, match=replacement):
            problem = repro.workload_from_spec(old)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            canonical = repro.workload_from_spec(replacement)
        assert problem.describe() == canonical.describe()

    def test_stable_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            repro.workload_from_spec("flows-x2")
            repro.workload_from_spec("base:shape=pow50")


class TestSweepSurface:
    def test_sweep_package_surface(self, tmp_path):
        from repro.sweep import ResultCache, SweepSpec, run_sweep

        spec = SweepSpec(workloads=("micro",), iterations=(10,))
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(spec, cache=cache)
        second = run_sweep(spec, cache=cache)
        assert first.executed == 1 and second.hits == 1
        assert (
            second.cells[0].payload["result"]
            == first.cells[0].payload["result"]
        )


class TestSubpackageImports:
    def test_every_subpackage_imports(self):
        import repro.baselines
        import repro.core
        import repro.events
        import repro.experiments
        import repro.model
        import repro.runtime
        import repro.sweep
        import repro.utility
        import repro.workloads

        for module in (
            repro.baselines, repro.core, repro.events, repro.experiments,
            repro.model, repro.runtime, repro.sweep, repro.utility,
            repro.workloads,
        ):
            assert module.__doc__
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
