"""Property-based tests (hypothesis) for the utility library.

The paper's assumptions on ``U_j`` — increasing, strictly concave,
continuously differentiable (section 2.2) — are exactly the invariants the
rate solver relies on, so we check them on randomized instances of every
concrete family, plus the optimality of :func:`solve_rate` itself.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utility.calculus import solve_rate, weighted_derivative, weighted_value
from repro.utility.functions import (
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
    ScaledUtility,
)

rates = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
positive_rates = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)
scales = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
offsets = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
exponents = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


def any_utility(draw):
    kind = draw(st.sampled_from(["log", "pow", "sat", "scaled"]))
    if kind == "log":
        return LogUtility(scale=draw(scales), offset=draw(offsets))
    if kind == "pow":
        return PowerUtility(scale=draw(scales), exponent=draw(exponents))
    if kind == "sat":
        return ExponentialSaturationUtility(scale=draw(scales), knee=draw(offsets))
    return ScaledUtility(base=LogUtility(scale=draw(scales)), factor=draw(scales))


utilities = st.composite(lambda draw: any_utility(draw))()


@given(utilities, positive_rates, positive_rates)
def test_utilities_are_increasing(utility, a, b):
    low, high = sorted((a, b))
    if low < high:
        assert utility.value(low) <= utility.value(high) + 1e-12


@given(utilities, positive_rates, positive_rates)
def test_derivative_is_decreasing(utility, a, b):
    """Strict concavity = strictly decreasing derivative."""
    low, high = sorted((a, b))
    if high > low * (1.0 + 1e-9):
        assert utility.derivative(low) >= utility.derivative(high)


def _numerically_saturated(utility, rate: float) -> bool:
    """True when ``exp(-rate/knee)`` underflows: the saturation utility is
    mathematically still increasing there but flat in float64."""
    return isinstance(utility, ExponentialSaturationUtility) and rate > 500.0 * utility.knee


@given(utilities, positive_rates)
def test_derivative_is_positive(utility, rate):
    if _numerically_saturated(utility, rate):
        return
    assert utility.derivative(rate) > 0.0


@given(utilities, positive_rates, positive_rates)
def test_concavity_midpoint(utility, a, b):
    """U((a+b)/2) >= (U(a)+U(b))/2 for concave U."""
    mid = (a + b) / 2.0
    lhs = utility.value(mid)
    rhs = (utility.value(a) + utility.value(b)) / 2.0
    assert lhs >= rhs - 1e-9 * max(1.0, abs(rhs))


@given(utilities, positive_rates)
def test_derivative_matches_finite_difference(utility, rate):
    step = max(rate * 1e-6, 1e-9)
    numeric = (utility.value(rate + step) - utility.value(max(rate - step, 0.0))) / (
        rate + step - max(rate - step, 0.0)
    )
    analytic = utility.derivative(rate)
    assert math.isclose(numeric, analytic, rel_tol=1e-3, abs_tol=1e-9)


@given(utilities, positive_rates)
def test_inverse_derivative_roundtrip(utility, rate):
    if _numerically_saturated(utility, rate):
        return
    try:
        recovered = utility.inverse_derivative(utility.derivative(rate))
    except NotImplementedError:
        return
    assert math.isclose(recovered, rate, rel_tol=1e-6, abs_tol=1e-6)


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), utilities),
        min_size=0,
        max_size=4,
    ),
    st.floats(min_value=0.0, max_value=1e3),
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=1.0, max_value=1000.0),
)
def test_solve_rate_beats_grid(terms, price, rate_min, span):
    """The returned rate is at least as good as any grid candidate."""
    rate_max = rate_min + span
    rate = solve_rate(terms, price, rate_min, rate_max)
    assert rate_min <= rate <= rate_max
    best = weighted_value(terms, rate) - rate * price
    for fraction in (0.0, 0.1, 0.31, 0.5, 0.77, 1.0):
        candidate = rate_min + fraction * span
        objective = weighted_value(terms, candidate) - candidate * price
        assert best >= objective - 1e-6 * max(1.0, abs(objective))


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=100.0), utilities),
        min_size=1,
        max_size=4,
    ),
    st.floats(min_value=1e-3, max_value=1e3),
)
def test_solve_rate_interior_stationarity(terms, price):
    """If the solution is interior, the derivative matches the price."""
    rate_min, rate_max = 0.01, 1e5
    rate = solve_rate(terms, price, rate_min, rate_max)
    if rate_min < rate < rate_max:
        assert math.isclose(
            weighted_derivative(terms, rate), price, rel_tol=1e-4, abs_tol=1e-9
        )
