"""Unit tests for the Lagrangian rate subproblem solver."""

import pytest

from repro.utility.calculus import (
    numeric_derivative,
    solve_rate,
    weighted_derivative,
    weighted_value,
)
from repro.utility.functions import (
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
)


class TestWeightedHelpers:
    def test_weighted_value(self):
        terms = [(2.0, LogUtility(scale=3.0)), (1.0, LogUtility(scale=1.0))]
        assert weighted_value(terms, 5.0) == pytest.approx(
            2.0 * 3.0 * LogUtility().value(5.0) + LogUtility().value(5.0)
        )

    def test_weighted_derivative_matches_numeric(self):
        terms = [(4.0, PowerUtility(scale=2.0, exponent=0.5))]
        rate = 9.0
        numeric = 4.0 * numeric_derivative(PowerUtility(scale=2.0, exponent=0.5), rate)
        assert weighted_derivative(terms, rate) == pytest.approx(numeric, rel=1e-5)


class TestSolveRateClosedForms:
    def test_log_interior_solution(self):
        # n * s / (1 + r) = p  ->  r = n*s/p - 1
        terms = [(10.0, LogUtility(scale=2.0))]
        rate = solve_rate(terms, price=0.5, rate_min=0.0, rate_max=1000.0)
        assert rate == pytest.approx(10.0 * 2.0 / 0.5 - 1.0)

    def test_log_mixed_scales_same_offset(self):
        terms = [(3.0, LogUtility(scale=2.0)), (5.0, LogUtility(scale=7.0))]
        rate = solve_rate(terms, price=1.0, rate_min=0.0, rate_max=1000.0)
        assert rate == pytest.approx(3.0 * 2.0 + 5.0 * 7.0 - 1.0)

    def test_power_interior_solution(self):
        terms = [(4.0, PowerUtility(scale=1.0, exponent=0.5))]
        # 4 * 0.5 * r^-0.5 = 1  ->  r = 4
        rate = solve_rate(terms, price=1.0, rate_min=0.0, rate_max=100.0)
        assert rate == pytest.approx(4.0)

    def test_clamps_to_bounds(self):
        terms = [(1.0, LogUtility(scale=1.0))]
        assert solve_rate(terms, price=1e-9, rate_min=10.0, rate_max=50.0) == 50.0
        assert solve_rate(terms, price=1e9, rate_min=10.0, rate_max=50.0) == 10.0


class TestSolveRateGeneric:
    def test_mixed_families_uses_root_finding(self):
        terms = [
            (2.0, LogUtility(scale=5.0)),
            (3.0, PowerUtility(scale=1.0, exponent=0.5)),
        ]
        price = 0.7
        rate = solve_rate(terms, price, rate_min=0.1, rate_max=500.0)
        # At the optimum the derivative equals the price.
        assert weighted_derivative(terms, rate) == pytest.approx(price, rel=1e-8)

    def test_mixed_offsets_log(self):
        terms = [
            (1.0, LogUtility(scale=5.0, offset=1.0)),
            (1.0, LogUtility(scale=5.0, offset=3.0)),
        ]
        rate = solve_rate(terms, price=0.9, rate_min=0.0, rate_max=100.0)
        assert weighted_derivative(terms, rate) == pytest.approx(0.9, rel=1e-8)

    def test_saturation_single_term_closed_form(self):
        utility = ExponentialSaturationUtility(scale=10.0, knee=5.0)
        rate = solve_rate([(2.0, utility)], price=0.4, rate_min=0.0, rate_max=100.0)
        assert 2.0 * utility.derivative(rate) == pytest.approx(0.4, rel=1e-9)

    def test_result_is_argmax_on_grid(self):
        terms = [
            (7.0, LogUtility(scale=3.0)),
            (2.0, PowerUtility(scale=2.0, exponent=0.25)),
        ]
        price = 1.3
        rate = solve_rate(terms, price, rate_min=1.0, rate_max=200.0)
        best = weighted_value(terms, rate) - rate * price
        for candidate in [1.0, 5.0, 20.0, 50.0, 100.0, 200.0]:
            other = weighted_value(terms, candidate) - candidate * price
            assert best >= other - 1e-9


class TestSolveRateEdgeCases:
    def test_zero_weights_with_positive_price(self):
        terms = [(0.0, LogUtility())]
        assert solve_rate(terms, price=1.0, rate_min=5.0, rate_max=10.0) == 5.0

    def test_zero_weights_with_zero_price(self):
        assert solve_rate([], price=0.0, rate_min=5.0, rate_max=10.0) == 10.0

    def test_zero_price_goes_to_max(self):
        terms = [(3.0, LogUtility())]
        assert solve_rate(terms, price=0.0, rate_min=5.0, rate_max=10.0) == 10.0

    def test_negative_price_goes_to_max(self):
        terms = [(3.0, LogUtility())]
        assert solve_rate(terms, price=-1.0, rate_min=5.0, rate_max=10.0) == 10.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            solve_rate([(1.0, LogUtility())], 1.0, rate_min=10.0, rate_max=5.0)
        with pytest.raises(ValueError):
            solve_rate([(1.0, LogUtility())], 1.0, rate_min=-1.0, rate_max=5.0)

    def test_nan_price_rejected(self):
        with pytest.raises(ValueError):
            solve_rate([(1.0, LogUtility())], float("nan"), 0.0, 1.0)

    def test_degenerate_interval(self):
        terms = [(1.0, LogUtility())]
        assert solve_rate(terms, price=0.5, rate_min=7.0, rate_max=7.0) == 7.0
