"""Unit tests for the concrete utility functions."""

import math

import pytest

from repro.utility.functions import (
    UTILITY_SHAPES,
    ExponentialSaturationUtility,
    LogUtility,
    PowerUtility,
    ScaledUtility,
    rank_log,
    rank_power,
)


class TestLogUtility:
    def test_value_matches_formula(self):
        utility = LogUtility(scale=3.0, offset=1.0)
        assert utility.value(0.0) == 0.0
        assert utility.value(math.e - 1.0) == pytest.approx(3.0)

    def test_derivative_matches_formula(self):
        utility = LogUtility(scale=3.0, offset=1.0)
        assert utility.derivative(0.0) == pytest.approx(3.0)
        assert utility.derivative(2.0) == pytest.approx(1.0)

    def test_inverse_derivative_roundtrip(self):
        utility = LogUtility(scale=5.0, offset=2.0)
        for rate in (0.0, 1.0, 13.7, 900.0):
            slope = utility.derivative(rate)
            assert utility.inverse_derivative(slope) == pytest.approx(rate)

    def test_callable_shorthand(self):
        utility = LogUtility(scale=1.0)
        assert utility(5.0) == utility.value(5.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            LogUtility().value(-1.0)

    def test_rejects_nan_rate(self):
        with pytest.raises(ValueError):
            LogUtility().value(float("nan"))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogUtility(scale=0.0)
        with pytest.raises(ValueError):
            LogUtility(offset=0.0)
        with pytest.raises(ValueError):
            LogUtility(scale=-1.0)

    def test_hashable_and_shareable(self):
        assert LogUtility(scale=2.0) == LogUtility(scale=2.0)
        assert hash(LogUtility(scale=2.0)) == hash(LogUtility(scale=2.0))


class TestPowerUtility:
    def test_value_matches_formula(self):
        utility = PowerUtility(scale=2.0, exponent=0.5)
        assert utility.value(4.0) == pytest.approx(4.0)
        assert utility.value(0.0) == 0.0

    def test_derivative_matches_formula(self):
        utility = PowerUtility(scale=2.0, exponent=0.5)
        assert utility.derivative(4.0) == pytest.approx(0.5)

    def test_derivative_at_zero_is_infinite(self):
        assert PowerUtility(exponent=0.25).derivative(0.0) == math.inf

    def test_inverse_derivative_roundtrip(self):
        utility = PowerUtility(scale=7.0, exponent=0.75)
        for rate in (0.5, 1.0, 42.0, 1000.0):
            slope = utility.derivative(rate)
            assert utility.inverse_derivative(slope) == pytest.approx(rate)

    def test_exponent_bounds_enforced(self):
        for exponent in (0.0, 1.0, 1.5, -0.2):
            with pytest.raises(ValueError):
                PowerUtility(exponent=exponent)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            PowerUtility(scale=0.0)


class TestScaledUtility:
    def test_scales_value_and_derivative(self):
        base = LogUtility(scale=1.0)
        scaled = ScaledUtility(base=base, factor=4.0)
        assert scaled.value(9.0) == pytest.approx(4.0 * base.value(9.0))
        assert scaled.derivative(9.0) == pytest.approx(4.0 * base.derivative(9.0))

    def test_inverse_derivative_delegates(self):
        scaled = ScaledUtility(base=LogUtility(scale=2.0), factor=3.0)
        for rate in (0.0, 5.0, 100.0):
            assert scaled.inverse_derivative(
                scaled.derivative(rate)
            ) == pytest.approx(rate)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScaledUtility(base=LogUtility(), factor=0.0)


class TestExponentialSaturationUtility:
    def test_saturates_at_scale(self):
        utility = ExponentialSaturationUtility(scale=10.0, knee=1.0)
        assert utility.value(0.0) == 0.0
        assert utility.value(100.0) == pytest.approx(10.0, rel=1e-6)

    def test_inverse_derivative_roundtrip(self):
        utility = ExponentialSaturationUtility(scale=10.0, knee=50.0)
        for rate in (0.0, 10.0, 120.0):
            assert utility.inverse_derivative(
                utility.derivative(rate)
            ) == pytest.approx(rate, abs=1e-9)

    def test_inverse_derivative_clamps_above_max_slope(self):
        utility = ExponentialSaturationUtility(scale=10.0, knee=50.0)
        max_slope = utility.derivative(0.0)
        assert utility.inverse_derivative(2.0 * max_slope) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExponentialSaturationUtility(scale=0.0)
        with pytest.raises(ValueError):
            ExponentialSaturationUtility(knee=0.0)


class TestFactories:
    def test_rank_log(self):
        assert rank_log(20.0) == LogUtility(scale=20.0, offset=1.0)

    def test_rank_power(self):
        assert rank_power(5.0, 0.25) == PowerUtility(scale=5.0, exponent=0.25)

    def test_shape_registry_covers_table3(self):
        assert set(UTILITY_SHAPES) == {"log", "pow25", "pow50", "pow75"}
        for factory in UTILITY_SHAPES.values():
            utility = factory(10.0)
            assert utility.value(2.0) > utility.value(1.0)
