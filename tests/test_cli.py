"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import BUILTIN_WORKLOADS, load_problem, main
from repro.model.serialization import allocation_from_json, problem_from_json


class TestLoadProblem:
    def test_every_builtin_loads(self):
        for name in BUILTIN_WORKLOADS:
            problem = load_problem(name)
            assert problem.flows

    def test_json_path_loads(self, tmp_path):
        from repro.model.serialization import problem_to_json
        from tests.conftest import make_tiny_problem

        path = tmp_path / "problem.json"
        path.write_text(problem_to_json(make_tiny_problem()))
        problem = load_problem(str(path))
        assert set(problem.flows) == {"fa", "fb"}

    def test_unknown_spec_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            load_problem("no-such-thing")


class TestOptimizeCommand:
    def test_prints_summary(self, capsys):
        assert main(["optimize", "base", "--iterations", "40"]) == 0
        out = capsys.readouterr().out
        assert "utility:" in out
        assert "feasible:   True" in out
        assert "f0:" in out

    def test_multirate_flag(self, capsys):
        assert main(
            ["optimize", "micro", "--iterations", "60", "--multirate"]
        ) == 0
        out = capsys.readouterr().out
        assert "(multirate)" in out
        assert "local delivery rates" in out

    def test_multirate_thins_on_heterogeneous_workload(self, tmp_path, capsys):
        from repro.model.serialization import problem_to_json
        from repro.workloads.base import base_workload

        problem = base_workload().with_node_capacity("S1", 9.0e4)
        path = tmp_path / "hetero.json"
        path.write_text(problem_to_json(problem))
        assert main(
            ["optimize", str(path), "--iterations", "150", "--multirate"]
        ) == 0
        assert "(thinned)" in capsys.readouterr().out

    def test_fixed_gamma_flag(self, capsys):
        assert main(
            ["optimize", "base", "--iterations", "30", "--gamma", "0.05"]
        ) == 0
        assert "stable by" in capsys.readouterr().out

    def test_writes_allocation_and_trace(self, tmp_path, capsys):
        allocation_path = tmp_path / "alloc.json"
        trace_path = tmp_path / "trace.csv"
        assert main(
            [
                "optimize", "base",
                "--iterations", "20",
                "-o", str(allocation_path),
                "--trace", str(trace_path),
            ]
        ) == 0
        allocation = allocation_from_json(allocation_path.read_text())
        assert set(allocation.rates) == {f"f{i}" for i in range(6)}
        lines = trace_path.read_text().splitlines()
        assert lines[0].startswith("iteration,utility,rate:f0")
        assert len(lines) == 21  # header + 20 iterations


class TestWorkloadCommand:
    def test_roundtrip_via_file(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        assert main(["workload", "base", "-o", str(path)]) == 0
        problem = problem_from_json(path.read_text())
        assert len(problem.classes) == 20

    def test_prints_to_stdout(self, capsys):
        assert main(["workload", "trade-data"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1


class TestExperimentCommands:
    def test_figure(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Base workload" in capsys.readouterr().out

    def test_extension_e3(self, capsys):
        assert main(["extension", "e3"]) == 0
        assert "Extension E3" in capsys.readouterr().out

    def test_extension_e4(self, capsys):
        assert main(["extension", "e4"]) == 0
        assert "Extension E4" in capsys.readouterr().out

    def test_extension_e5_renders_figure(self, capsys):
        assert main(["extension", "e5"]) == 0
        out = capsys.readouterr().out
        assert "Extension E5" in out
        assert "flow f5 leaves" in out

    def test_extension_e7(self, capsys):
        assert main(["extension", "e7"]) == 0
        assert "Extension E7" in capsys.readouterr().out

    def test_extension_e8(self, capsys):
        assert main(["extension", "e8"]) == 0
        out = capsys.readouterr().out
        assert "Extension E8" in out
        assert "checkpoint restart" in out

    def test_tree_and_micro_workloads_available(self, capsys):
        assert main(["workload", "tree"]) == 0
        capsys.readouterr()
        assert main(["workload", "micro"]) == 0

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStatsCommand:
    def test_human_output_has_metrics_and_diagnostics(self, capsys):
        assert main(["stats", "micro", "--iterations", "80"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "lrgp.iterations: 80" in out
        assert "convergence diagnostics" in out
        assert "stable by iteration" in out

    def test_json_output_is_parseable(self, capsys):
        assert main(
            ["stats", "micro", "--iterations", "60", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "micro"
        assert payload["metrics"]["counters"]["lrgp.iterations"] == 60
        assert "converged" in payload["diagnostics"]

    def test_prometheus_output(self, capsys):
        assert main(
            ["stats", "micro", "--iterations", "30", "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_lrgp_iterations_total counter" in out
        assert "repro_lrgp_iterations_total 30" in out

    def test_sync_engine(self, capsys):
        assert main(
            ["stats", "micro", "--iterations", "30", "--engine", "sync"]
        ) == 0
        assert "runtime.sync.rounds: 30" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(
            ["stats", "micro", "--iterations", "20", "--format", "json",
             "-o", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["metrics"]["counters"]["lrgp.iterations"] == 20


class TestChaosCommand:
    ARGS = [
        "chaos", "micro",
        "--horizon", "120", "--crash-rate", "0.03", "--warmup", "40",
    ]

    def test_human_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "utility:" in out
        assert "recoveries:" in out

    def test_json_report_is_machine_readable(self, capsys):
        assert main([*self.ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["crashes"] >= 1
        assert payload["retention"] == pytest.approx(1.0, rel=0.05)
        assert payload["recoveries"]
        assert payload["recoveries"][0]["from_checkpoint"] is True

    def test_no_checkpoint_forces_cold_restarts(self, capsys):
        assert main([*self.ARGS, "--no-checkpoint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["checkpoint_interval"] is None
        assert all(
            record["from_checkpoint"] is False
            for record in payload["recoveries"]
        )


class TestTraceCommand:
    def test_jsonl_stream_is_schema_valid(self, capsys):
        from repro.obs.events import IterationEvent, event_from_dict

        assert main(
            ["trace", "micro", "--iterations", "25", "--events", "iteration"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 25
        events = [event_from_dict(json.loads(line)) for line in lines]
        assert all(isinstance(event, IterationEvent) for event in events)
        assert [event.iteration for event in events] == list(range(1, 26))

    def test_snapshots_flag_adds_state_columns(self, capsys):
        assert main(
            ["trace", "micro", "--iterations", "10", "--events", "iteration",
             "--snapshots"]
        ) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert "rates" in first
        assert "gammas" in first
        assert "slack" in first

    def test_csv_format(self, capsys):
        assert main(
            ["trace", "micro", "--iterations", "10", "--events", "iteration",
             "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("type,")
        assert len(lines) == 11

    def test_output_file_reports_count(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "micro", "--iterations", "15", "--events", "iteration",
             "-o", str(path)]
        ) == 0
        assert "15 event(s) written" in capsys.readouterr().out
        assert len(path.read_text().splitlines()) == 15

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(SystemExit, match="unknown event"):
            main(["trace", "micro", "--events", "bogus"])

    def test_async_engine_emits_messages(self, capsys):
        assert main(
            ["trace", "micro", "--iterations", "20", "--engine", "async",
             "--events", "message"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        assert all(json.loads(line)["type"] == "message" for line in lines)

    def test_explicit_run_subcommand_is_equivalent(self, capsys):
        # "trace micro" (pre-PR-5 spelling) and "trace run micro" are the
        # same command; the bare form goes through the argv shim.
        assert main(
            ["trace", "run", "micro", "--iterations", "5",
             "--events", "iteration"]
        ) == 0
        assert len(capsys.readouterr().out.splitlines()) == 5

    def test_v2_messages_carry_causal_spans(self, capsys):
        assert main(
            ["trace", "micro", "--iterations", "5", "--engine", "sync",
             "--events", "message"]
        ) == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert records
        assert all(record["trace_id"] == "sync-micro" for record in records)
        assert all(record["span_id"].startswith("s") for record in records)

    def test_gzip_capture_requires_output_file(self):
        with pytest.raises(SystemExit, match="requires -o"):
            main(["trace", "micro", "--gzip"])

    def test_gzip_capture_round_trips(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = tmp_path / "trace.jsonl.gz"
        assert main(
            ["trace", "micro", "--iterations", "10", "--events", "iteration",
             "--gzip", "-o", str(path)]
        ) == 0
        assert "10 event(s) written" in capsys.readouterr().out
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # actually gzipped
        events = list(read_jsonl(path))
        assert [event.iteration for event in events] == list(range(1, 11))


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory):
    """One shared micro capture for the show/causal/replay commands."""
    path = tmp_path_factory.mktemp("capture") / "trace.jsonl"
    assert main(
        ["trace", "micro", "--iterations", "120", "--engine", "sync",
         "-o", str(path)]
    ) == 0
    return str(path)


class TestTraceShowCommand:
    def test_renders_one_line_per_event(self, capture_path, capsys):
        assert main(["trace", "show", capture_path]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        assert "message" in out
        assert "->" in out  # message lines show sender -> recipient

    def test_type_filter(self, capture_path, capsys):
        assert main(["trace", "show", capture_path, "--type", "iteration"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        assert all("iteration" in line for line in lines)

    def test_since_filter_drops_earlier_events(self, capture_path, capsys):
        assert main(
            ["trace", "show", capture_path, "--type", "iteration",
             "--since", "100"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert 0 < len(lines) < 120

    def test_unmatched_filter_reports_empty(self, capture_path, capsys):
        assert main(
            ["trace", "show", capture_path, "--since", "1e9"]
        ) == 0
        assert "(no matching events)" in capsys.readouterr().out

    def test_missing_capture_exits(self):
        with pytest.raises(SystemExit, match="no such capture"):
            main(["trace", "show", "/no/such/file.jsonl"])

    def test_follow_drains_a_finished_capture(self, capture_path, capsys):
        assert main(
            ["trace", "show", capture_path, "--type", "iteration",
             "--follow", "--idle-timeout", "0.2"]
        ) == 0
        assert len(capsys.readouterr().out.splitlines()) == 120

    def test_dashboard_renders_replay_summary(self, capture_path, capsys):
        assert main(
            ["trace", "show", capture_path, "--dashboard",
             "--refresh-every", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace dashboard (final" in out
        assert "utility:" in out


class TestTraceCausalCommand:
    def test_human_report_shows_critical_path(self, capture_path, capsys):
        assert main(["trace", "causal", capture_path]) == 0
        out = capsys.readouterr().out
        assert "causal graph:" in out
        assert "critical path:" in out
        assert "time-to-stability" in out

    def test_json_report_satisfies_acceptance_criterion(
        self, capture_path, capsys
    ):
        assert main(["trace", "causal", capture_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        path = payload["critical_path"]
        assert path is not None
        assert path["hops"]  # non-empty
        assert path["total_latency"] >= path["time_to_stability"] - 1e-9

    def test_missing_capture_exits(self):
        with pytest.raises(SystemExit, match="no such capture"):
            main(["trace", "causal", "/no/such/file.jsonl"])


class TestReplayCommand:
    def test_full_replay_prints_final_state(self, capture_path, capsys):
        assert main(["replay", capture_path]) == 0
        out = capsys.readouterr().out
        assert "replayed:" in out
        assert "utility:" in out

    def test_seek_to_index_json(self, capture_path, capsys):
        assert main(["replay", capture_path, "--at", "50", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"] == 50

    def test_negative_index_counts_from_end(self, capture_path, capsys):
        assert main(["replay", capture_path, "--at", "-1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["index"] > 0

    def test_out_of_range_index_exits(self, capture_path):
        with pytest.raises(SystemExit, match="out of range"):
            main(["replay", capture_path, "--at", "10000000"])

    def test_missing_capture_exits(self):
        with pytest.raises(SystemExit, match="no such capture"):
            main(["replay", "/no/such/file.jsonl"])


class TestBenchCommands:
    def write_suite(self, directory, name, payload):
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_snapshot_writes_trajectory(self, tmp_path, capsys):
        self.write_suite(tmp_path, "engines", {"speedup": 3.0})
        out_path = tmp_path / "BENCH_trajectory.json"
        assert main(
            ["bench", "snapshot", "--results-dir", str(tmp_path)]
        ) == 0
        assert "1 metric(s)" in capsys.readouterr().out
        snapshot = json.loads(out_path.read_text())
        assert snapshot["metrics"] == {"engines.speedup": 3.0}

    def test_compare_reports_regressions(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"metrics": {"engines.speedup": 4.0}}))
        new.write_text(json.dumps({"metrics": {"engines.speedup": 2.0}}))
        assert main(["bench", "compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "1 regression(s)" in out
        assert "engines.speedup" in out

    def test_strict_mode_fails_on_regressions(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"metrics": {"engines.speedup": 4.0}}))
        new.write_text(json.dumps({"metrics": {"engines.speedup": 2.0}}))
        assert main(
            ["bench", "compare", str(old), str(new), "--strict"]
        ) == 1
        assert main(
            ["bench", "compare", str(old), str(old), "--strict"]
        ) == 0

    def test_compare_json_output(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"metrics": {"engines.speedup": 4.0}}))
        assert main(
            ["bench", "compare", str(old), str(old), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stable"] == 1
        assert payload["regressions"] == []

    def test_missing_snapshot_exits(self, tmp_path):
        present = tmp_path / "old.json"
        present.write_text("{}")
        with pytest.raises(SystemExit, match="no such snapshot"):
            main(["bench", "compare", str(present), "/no/such.json"])

    def test_missing_results_dir_exits(self):
        with pytest.raises(SystemExit, match="no such results directory"):
            main(["bench", "snapshot", "--results-dir", "/no/such/dir"])


class TestProfileCommand:
    def test_prints_phase_tree(self, capsys):
        assert main(["profile", "micro", "--iterations", "30"]) == 0
        out = capsys.readouterr().out
        assert "engine:     reference" in out
        assert "solve" in out
        assert "  iteration" in out
        assert "argmax" in out and "admission" in out and "price_update" in out
        assert "total " in out

    def test_vectorized_engine(self, capsys):
        assert main(
            ["profile", "base", "--engine", "vectorized", "--iterations", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine:     vectorized" in out
        assert "argmax" in out

    def test_runtime_engines_profile_runtime_phases(self, capsys):
        assert main(
            ["profile", "micro", "--engine", "sync", "--iterations", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "activation" in out and "delivery" in out
        assert main(
            ["profile", "micro", "--engine", "async", "--iterations", "10"]
        ) == 0
        assert "runtime" in capsys.readouterr().out

    def test_flame_speedscope_and_json_exports(self, tmp_path, capsys):
        flame = tmp_path / "flame.txt"
        speedscope = tmp_path / "profile.speedscope.json"
        report = tmp_path / "profile.json"
        assert main(
            ["profile", "micro", "--iterations", "30",
             "--flame", str(flame), "--speedscope", str(speedscope),
             "--json", str(report)]
        ) == 0
        out = capsys.readouterr().out
        assert "collapsed stacks written" in out
        assert "speedscope profile written" in out
        assert "profile JSON written" in out
        for line in flame.read_text().strip().splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack.split(";")[0] == "solve"
            assert int(value) > 0
        scope = json.loads(speedscope.read_text())
        assert scope["profiles"][0]["unit"] == "nanoseconds"
        payload = json.loads(report.read_text())
        assert payload["version"] == 1
        assert "solve.iteration" in payload["phases"]

    def test_allocations_flag_adds_column(self, capsys):
        assert main(
            ["profile", "micro", "--iterations", "10", "--allocations"]
        ) == 0
        assert "alloc" in capsys.readouterr().out


class TestDashboardBoundedMemory:
    def make_events(self, count):
        from repro.obs import IterationEvent

        return [
            IterationEvent(
                iteration=index + 1, utility=float(index), t_ns=index, at=None
            )
            for index in range(count)
        ]

    def test_aggregator_retains_only_the_rolling_window(self):
        from repro.cli import _DashboardAggregator

        aggregator = _DashboardAggregator(window=100)
        for event in self.make_events(100_000):
            aggregator.add(event)
        assert aggregator.total == 100_000
        assert len(aggregator.recent) == 100
        assert aggregator.kind_counts == {"iteration": 100_000}
        state = aggregator.engine.state()
        assert state.index == 100_000
        assert state.utility == 99_999.0

    def test_streamed_state_matches_full_replay(self):
        from repro.cli import _DashboardAggregator
        from repro.obs import ReplayEngine

        events = self.make_events(500)
        aggregator = _DashboardAggregator(window=10)
        for event in events:
            aggregator.add(event)
        full = ReplayEngine(events).final()
        streamed = aggregator.engine.state()
        assert streamed.utility == full.utility
        assert streamed.index == full.index
        assert streamed.rates == full.rates

    def test_dashboard_frame_reports_kind_counts(self, capsys):
        from repro.cli import _DashboardAggregator, _render_dashboard_frame

        aggregator = _DashboardAggregator(window=10)
        for event in self.make_events(25):
            aggregator.add(event)
        _render_dashboard_frame(aggregator, final=True)
        out = capsys.readouterr().out
        assert "25 event(s)" in out
        assert "iteration=25" in out


class TestFollowRejectsGzip:
    def test_follow_on_gzip_capture_exits_with_clear_error(self, tmp_path):
        path = tmp_path / "capture.jsonl.gz"
        assert main(
            ["trace", "micro", "--iterations", "5", "--gzip", "-o", str(path)]
        ) == 0
        with pytest.raises(SystemExit, match="cannot --follow gzip"):
            main(["trace", "show", str(path), "--follow"])

    def test_show_without_follow_still_reads_gzip(self, tmp_path, capsys):
        path = tmp_path / "capture.jsonl.gz"
        assert main(
            ["trace", "micro", "--iterations", "5", "--gzip", "-o", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "show", str(path)]) == 0
        assert "iteration" in capsys.readouterr().out


class TestBenchCompareBlame:
    def profile_payload(self, admission=None):
        import time

        from repro.core.lrgp import LRGP, LRGPConfig
        from repro.obs import PhaseProfiler, Telemetry

        options = {} if admission is None else {"admission": admission}
        profiler = PhaseProfiler()
        config = LRGPConfig(
            telemetry=Telemetry(profiler=profiler), **options
        )
        LRGP(load_problem("base"), config).run(30)
        report = profiler.report()
        return {
            "workload": "base",
            "wall_time_seconds": report.total_wall_ns / 1e9,
            "phases": {
                stat.dotted: {
                    "calls": stat.calls,
                    "self_seconds": stat.self_wall_ns / 1e9,
                    "total_seconds": stat.wall_ns / 1e9,
                }
                for stat in report.stats
            },
        }

    def test_synthetic_phase_slowdown_is_named_in_blame(
        self, tmp_path, capsys
    ):
        import time

        from repro.core.consumer_allocation import allocate_consumers

        def slow_admission(problem, node_id, rates):
            time.sleep(0.002)
            return allocate_consumers(problem, node_id, rates)

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(self.profile_payload()))
        new.write_text(json.dumps(self.profile_payload(slow_admission)))
        assert main(["bench", "compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "regression(s)" in out
        assert "regression blame" in out
        blame_section = out.split("regression blame", 1)[1]
        assert "solve.iteration.admission" in blame_section.splitlines()[1]


class TestWorkloadSpecConvention:
    """The registry's NAME[:k=v,...] spec is the one CLI convention."""

    def test_flag_and_positional_are_equivalent(self, capsys):
        assert main(["optimize", "micro", "--iterations", "30"]) == 0
        positional = capsys.readouterr().out
        assert main(
            ["optimize", "--workload", "micro", "--iterations", "30"]
        ) == 0
        assert capsys.readouterr().out == positional

    def test_conflicting_workloads_exit(self):
        with pytest.raises(SystemExit, match="twice"):
            main(["optimize", "micro", "--workload", "base"])

    def test_missing_workload_exits(self):
        with pytest.raises(SystemExit, match="workload"):
            main(["optimize"])

    def test_parameterized_spec_reaches_factory(self, capsys):
        assert main(["workload", "tree:depth=2,flows=2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1

    def test_deprecated_spelling_still_reachable(self, capsys):
        with pytest.warns(DeprecationWarning, match="base:shape=pow50"):
            assert main(["optimize", "base-pow50", "--iterations", "30"]) == 0
        assert "utility:" in capsys.readouterr().out

    def test_workload_list_shows_registry_and_aliases(self, capsys):
        assert main(["workload", "--list"]) == 0
        out = capsys.readouterr().out
        assert "micro" in out
        assert "flows-x4" in out
        assert "flows:factor=4" in out


class TestSweepCommand:
    GRID = [
        "--workload", "micro",
        "--method", "lrgp", "--method", "annealing",
        "--iterations", "20",
    ]

    def cache_args(self, tmp_path):
        return ["--cache-dir", str(tmp_path / "cache")]

    def test_dry_run_plans_without_executing(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", "--dry-run", *self.GRID,
             *self.cache_args(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 to execute" in out
        assert not (tmp_path / "cache").exists() or not any(
            (tmp_path / "cache").rglob("*.json")
        )

    def test_run_then_rerun_hits_cache(self, tmp_path, capsys):
        args = ["sweep", "run", *self.GRID, *self.cache_args(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 cached, 2 executed" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 cached, 0 executed" in second

    def test_force_re_executes(self, tmp_path, capsys):
        args = ["sweep", "run", *self.GRID, *self.cache_args(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--force"]) == 0
        assert "0 cached, 2 executed" in capsys.readouterr().out

    def test_exports_csv_json_bench(self, tmp_path, capsys):
        import csv

        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        bench_path = tmp_path / "bench.json"
        assert main(
            ["sweep", "run", *self.GRID, *self.cache_args(tmp_path),
             "--csv", str(csv_path), "--json", str(json_path),
             "--bench", str(bench_path)]
        ) == 0
        rows = list(csv.DictReader(csv_path.open()))
        assert len(rows) == 2
        payload = json.loads(json_path.read_text())
        assert payload["cells_total"] == 2
        bench = json.loads(bench_path.read_text())
        assert bench["farm"]["cells_total"] == 2

    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "workloads": ["micro"],
            "methods": ["lrgp"],
            "iterations": [15],
        }))
        assert main(
            ["sweep", "run", "--spec", str(spec_path),
             *self.cache_args(tmp_path)]
        ) == 0
        assert "micro/lrgp/i15" in capsys.readouterr().out

    def test_spec_file_excludes_axis_flags(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"workloads": ["micro"]}))
        with pytest.raises(SystemExit, match="--spec"):
            main(["sweep", "run", "--spec", str(spec_path),
                  "--workload", "base", *self.cache_args(tmp_path)])

    def test_unknown_workload_in_grid_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["sweep", "run", "--workload", "no-such",
                  *self.cache_args(tmp_path)])

    def test_malformed_workload_spec_exits(self, tmp_path):
        # Empty spec parts must abort the sweep, not silently drop.
        with pytest.raises(SystemExit, match="empty parameter"):
            main(["sweep", "run", "--workload", "base:,,flows=4",
                  *self.cache_args(tmp_path)])

    def test_non_finite_workload_param_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="non-finite"):
            main(["sweep", "run", "--workload", "base:link_capacity=inf",
                  *self.cache_args(tmp_path)])

    def test_show_and_clean(self, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "show", *cache]) == 0
        out = capsys.readouterr().out
        assert "micro/lrgp/i20" in out
        assert "2 entr" in out
        assert main(["sweep", "clean", *cache]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["sweep", "show", *cache]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestStatsFromJson:
    def archive(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(
            ["stats", "micro", "--iterations", "20", "--format", "json",
             "-o", str(path)]
        ) == 0
        capsys.readouterr()
        return path

    def test_renders_archived_snapshot(self, tmp_path, capsys):
        path = self.archive(tmp_path, capsys)
        assert main(["stats", "--from-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"source:     {path}" in out
        assert "lrgp.iterations: 20" in out

    def test_prometheus_format(self, tmp_path, capsys):
        path = self.archive(tmp_path, capsys)
        assert main(
            ["stats", "--from-json", str(path), "--format", "prometheus"]
        ) == 0
        assert "repro_lrgp_iterations_total 20" in capsys.readouterr().out

    def test_json_format_round_trips(self, tmp_path, capsys):
        path = self.archive(tmp_path, capsys)
        assert main(
            ["stats", "--from-json", str(path), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["lrgp.iterations"] == 20

    def test_bare_metrics_snapshot_loads_too(self, tmp_path, capsys):
        path = self.archive(tmp_path, capsys)
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(json.loads(path.read_text())["metrics"]))
        assert main(["stats", "--from-json", str(bare)]) == 0
        assert "lrgp.iterations: 20" in capsys.readouterr().out

    def test_workload_plus_from_json_is_ambiguous(self, tmp_path, capsys):
        path = self.archive(tmp_path, capsys)
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["stats", "micro", "--from-json", str(path)])

    def test_malformed_file_exits(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"not\": \"a snapshot\"}")
        with pytest.raises(SystemExit):
            main(["stats", "--from-json", str(path)])


class TestSweepObservability:
    GRID = [
        "--workload", "micro", "--seed", "0", "--seed", "1",
        "--iterations", "15",
    ]

    def cache_args(self, tmp_path):
        return ["--cache-dir", str(tmp_path / "cache")]

    def test_live_progress_goes_to_stderr(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", *self.GRID, *self.cache_args(tmp_path),
             "--live"]
        ) == 0
        captured = capsys.readouterr()
        assert "sweep finished" in captured.err
        assert "[2/2]" in captured.err
        assert "sweep finished" not in captured.out

    def test_events_stream_is_jsonl(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main(
            ["sweep", "run", *self.GRID, *self.cache_args(tmp_path),
             "--events", str(events_path)]
        ) == 0
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("cell_finished") == 2

    def test_capture_ships_telemetry_and_flame_exports(self, tmp_path, capsys):
        flame = tmp_path / "farm.folded"
        speedscope = tmp_path / "farm.speedscope.json"
        assert main(
            ["sweep", "run", *self.GRID, *self.cache_args(tmp_path),
             "--capture", "--flame", str(flame),
             "--speedscope", str(speedscope)]
        ) == 0
        lines = flame.read_text().splitlines()
        assert lines and all(
            line.rsplit(" ", 1)[1].isdigit() for line in lines
        )
        assert any(line.startswith("cell") for line in lines)
        profile = json.loads(speedscope.read_text())
        assert profile["profiles"][0]["name"] == "repro sweep farm"

    def test_flame_without_capture_exits_with_advice(self, tmp_path):
        with pytest.raises(SystemExit, match="--capture"):
            main(
                ["sweep", "run", *self.GRID, *self.cache_args(tmp_path),
                 "--flame", str(tmp_path / "farm.folded")]
            )

    def test_failed_cell_exits_nonzero_but_completes(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", "--workload", "micro",
             "--workload", "base:shape=bogus", "--iterations", "15",
             "--jobs", "2", *self.cache_args(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "1 cell(s) FAILED" in out
        assert "ValueError" in out
        # The good cell still cached; rerun hits it.
        assert main(
            ["sweep", "run", "--workload", "micro", "--iterations", "15",
             *self.cache_args(tmp_path)]
        ) == 0
        assert "1 cached, 0 executed" in capsys.readouterr().out

    def test_ledger_records_every_invocation(self, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "ledger", *cache]) == 0
        out = capsys.readouterr().out
        assert "ledger.jsonl" in out
        assert "hits=0 executed=2" in out
        assert "hits=2 executed=0" in out

    def test_ledger_json_and_limit(self, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        capsys.readouterr()
        assert main(["sweep", "ledger", *cache, "--json", "--limit", "1"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["hits"] == 2

    def test_no_ledger_opts_out(self, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache, "--no-ledger"]) == 0
        capsys.readouterr()
        assert main(["sweep", "ledger", *cache]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_diff_flame_between_cached_cells(self, tmp_path, capsys):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache, "--capture"]) == 0
        capsys.readouterr()
        out_path = tmp_path / "diff.folded"
        assert main(
            ["sweep", "diff-flame", "micro/lrgp/i15", "micro/lrgp/i15/s1",
             *cache, "-o", str(out_path)]
        ) == 0
        lines = out_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, before, after = line.rsplit(" ", 2)
            assert stack
            int(before), int(after)

    def test_diff_flame_unknown_selector_exits(self, tmp_path):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache, "--capture"]) == 0
        with pytest.raises(SystemExit, match="no cached cell"):
            main(["sweep", "diff-flame", "nope", "micro/lrgp/i15", *cache])

    def test_diff_flame_without_telemetry_advises_capture(self, tmp_path):
        cache = self.cache_args(tmp_path)
        assert main(["sweep", "run", *self.GRID, *cache]) == 0
        with pytest.raises(SystemExit, match="--capture"):
            main(
                ["sweep", "diff-flame", "micro/lrgp/i15",
                 "micro/lrgp/i15/s1", *cache]
            )
