"""Tests for the distributed multirate deployment."""

import pytest

from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.core.multirate import MultirateLRGP, MultirateConfig, multirate_node_usage
from repro.runtime.multirate import (
    DemandUpdate,
    MultirateNodeAgent,
    MultirateSourceAgent,
    MultirateSynchronousRuntime,
)
from repro.workloads.base import base_workload
from repro.workloads.micro import micro_workload


class TestEquivalenceWithCentralizedDriver:
    def test_adaptive_gamma_trajectories_identical(self, base_problem):
        reference = MultirateLRGP(base_problem)
        reference.run(80)
        runtime = MultirateSynchronousRuntime(base_problem, node_gamma=AdaptiveGamma())
        runtime.run(80)
        assert runtime.utilities == pytest.approx(reference.utilities, rel=1e-12)

    def test_fixed_gamma_trajectories_identical(self, base_problem):
        reference = MultirateLRGP(
            base_problem, MultirateConfig(node_gamma=FixedGamma(0.05))
        )
        reference.run(60)
        runtime = MultirateSynchronousRuntime(
            base_problem, node_gamma=FixedGamma(0.05)
        )
        runtime.run(60)
        assert runtime.utilities == pytest.approx(reference.utilities, rel=1e-12)

    def test_allocations_identical(self, base_problem):
        reference = MultirateLRGP(base_problem)
        reference.run(50)
        runtime = MultirateSynchronousRuntime(base_problem)
        runtime.run(50)
        ref_allocation = reference.allocation()
        run_allocation = runtime.allocation()
        assert run_allocation.source_rates == pytest.approx(
            ref_allocation.source_rates
        )
        assert run_allocation.populations == ref_allocation.populations
        for key, rate in ref_allocation.local_rates.items():
            assert run_allocation.local_rates[key] == pytest.approx(rate)

    def test_prices_identical(self, base_problem):
        reference = MultirateLRGP(base_problem)
        reference.run(50)
        runtime = MultirateSynchronousRuntime(base_problem)
        runtime.run(50)
        assert runtime.node_prices() == pytest.approx(reference.node_prices())


class TestRuntimeMechanics:
    def test_feasible_at_local_rates(self):
        problem = micro_workload()
        runtime = MultirateSynchronousRuntime(problem)
        runtime.run(200)
        allocation = runtime.allocation()
        usage = multirate_node_usage(problem, allocation, "S")
        assert usage <= problem.nodes["S"].capacity * (1 + 1e-9)

    def test_demand_messages_flow(self, base_problem):
        runtime = MultirateSynchronousRuntime(base_problem)
        runtime.run(1)
        # Per round: 12 rate updates down, per node 4 price + up to 4
        # populations + up to 4 demands back; bootstrap adds one node batch.
        assert runtime.messages_sent > 36

    def test_negative_rounds_rejected(self, base_problem):
        with pytest.raises(ValueError):
            MultirateSynchronousRuntime(base_problem).run(-1)

    def test_agents_reject_unknown_messages(self, base_problem):
        source = MultirateSourceAgent(base_problem, "f0")
        node = MultirateNodeAgent(base_problem, "S0", gamma=FixedGamma(0.1))
        with pytest.raises(TypeError):
            source.receive(
                DemandUpdate.__mro__[1](sender="x", recipient="y", stamp=0.0)
            )
        with pytest.raises(TypeError):
            node.receive(
                DemandUpdate(sender="x", recipient="y", stamp=0.0,
                             node_id="S0", flow_id="f0", demand=1.0)
            )


class TestMultirateBeatsSingleRateDistributed:
    def test_heterogeneous_capacity_gain_survives_distribution(self):
        """The E2 gain is not an artifact of centralized execution."""
        from repro.runtime.synchronous import SynchronousRuntime

        problem = base_workload().with_node_capacity("S1", 9.0e4)
        single = SynchronousRuntime(problem)
        single.run(250)
        multi = MultirateSynchronousRuntime(problem)
        multi.run(250)
        assert multi.utilities[-1] > 1.02 * single.utilities[-1]
