"""Tests for failure injection, checkpoint/recovery and protocol hardening.

Covers the fault plan (validation + seeded determinism), the runtime's
execution of crashes/partitions/storms, checkpoint-vs-cold restart
semantics, recovery-time bookkeeping, and the hardened message layer
(sequence numbers, stale rejection, bounded retry).
"""

import pytest

from repro.events.reliability import RetryPolicy
from repro.obs import MemorySink, Telemetry
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime
from repro.runtime.faults import (
    CrashFault,
    DelayStorm,
    FaultPlan,
    PartitionFault,
    RecoveryRecord,
    agent_addresses,
)


class TestFaultPlanValidation:
    def test_crash_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CrashFault(at=-1.0, address="node:S")
        with pytest.raises(ValueError):
            CrashFault(at=1.0, address="node:S", restart_after=0.0)

    def test_partition_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PartitionFault(at=-1.0, duration=1.0, isolated=frozenset({"node:S"}))
        with pytest.raises(ValueError):
            PartitionFault(at=1.0, duration=0.0, isolated=frozenset({"node:S"}))
        with pytest.raises(ValueError):
            PartitionFault(at=1.0, duration=1.0, isolated=frozenset())

    def test_storm_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DelayStorm(at=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            DelayStorm(at=1.0, duration=0.0)
        with pytest.raises(ValueError):
            DelayStorm(at=1.0, duration=1.0, factor=0.5)

    def test_plan_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FaultPlan(checkpoint_interval=0.0)
        with pytest.raises(ValueError):
            FaultPlan(recovery_threshold=0.0)
        with pytest.raises(ValueError):
            FaultPlan(recovery_threshold=1.5)

    def test_plan_bool_and_count(self):
        assert not FaultPlan()
        plan = FaultPlan(
            crashes=(CrashFault(at=1.0, address="node:S"),),
            storms=(DelayStorm(at=2.0, duration=1.0),),
        )
        assert plan
        assert plan.fault_count == 2

    def test_addresses_collects_all_named_agents(self):
        plan = FaultPlan(
            crashes=(CrashFault(at=1.0, address="src:fa"),),
            partitions=(
                PartitionFault(
                    at=2.0, duration=1.0, isolated=frozenset({"node:S", "src:fb"})
                ),
            ),
        )
        assert plan.addresses() == frozenset({"src:fa", "node:S", "src:fb"})


class TestFaultPlanGeneration:
    def test_same_seed_same_plan(self, tiny_problem):
        kwargs = dict(
            horizon=200.0, crash_rate=0.05, partition_rate=0.02, storm_rate=0.02
        )
        a = FaultPlan.random(tiny_problem, seed=5, **kwargs)
        b = FaultPlan.random(tiny_problem, seed=5, **kwargs)
        assert a == b
        assert a.fault_count > 0

    def test_different_seed_different_plan(self, tiny_problem):
        a = FaultPlan.random(tiny_problem, seed=5, horizon=200.0, crash_rate=0.05)
        b = FaultPlan.random(tiny_problem, seed=6, horizon=200.0, crash_rate=0.05)
        assert a != b

    def test_faults_respect_warmup_and_horizon(self, tiny_problem):
        plan = FaultPlan.random(
            tiny_problem, seed=1, horizon=100.0, crash_rate=0.2, warmup=30.0
        )
        assert plan.crashes
        assert all(30.0 < crash.at < 100.0 for crash in plan.crashes)

    def test_targets_come_from_the_problem_fleet(self, tiny_problem):
        plan = FaultPlan.random(tiny_problem, seed=2, horizon=300.0, crash_rate=0.1)
        fleet = set(agent_addresses(tiny_problem))
        assert plan.addresses() <= fleet

    def test_generation_validates_inputs(self, tiny_problem):
        with pytest.raises(ValueError):
            FaultPlan.random(tiny_problem, seed=0, horizon=10.0, warmup=10.0)
        with pytest.raises(ValueError):
            FaultPlan.random(tiny_problem, seed=0, horizon=10.0, crash_rate=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.random(
                tiny_problem, seed=0, horizon=10.0, cold_probability=2.0
            )


def crash_plan(address, at=40.0, restart_after=5.0, cold=False, **kwargs):
    return FaultPlan(
        crashes=(
            CrashFault(at=at, address=address, restart_after=restart_after, cold=cold),
        ),
        **kwargs,
    )


class TestCrashAndRestart:
    def test_unknown_address_rejected_at_construction(self, tiny_problem):
        with pytest.raises(ValueError, match="unknown agents"):
            AsynchronousRuntime(
                tiny_problem, fault_plan=crash_plan("node:nope")
            )

    def test_node_down_zeroes_populations(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S", restart_after=None),
        )
        runtime.run_until(39.0)
        assert sum(runtime.allocation().populations.values()) > 0
        assert runtime.down_agents == frozenset()
        runtime.run_until(45.0)
        assert runtime.down_agents == frozenset({"node:S"})
        populations = runtime.allocation().populations
        assert set(populations) == set(tiny_problem.classes)
        assert all(value == 0 for value in populations.values())

    def test_crashed_source_keeps_last_deployed_rate(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("src:fa", restart_after=None),
        )
        runtime.run_until(39.0)
        before = runtime.allocation().rates["fa"]
        runtime.run_until(60.0)
        assert runtime.allocation().rates["fa"] == before

    def test_messages_to_down_agent_are_dropped(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S", restart_after=None),
        )
        runtime.run_until(60.0)
        assert runtime.messages_to_down > 0

    def test_checkpoint_restart_recovers_utility(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S"),
        )
        runtime.run_until(39.0)
        pre_fault = runtime.utility()
        runtime.run_until(120.0)
        assert runtime.down_agents == frozenset()
        assert len(runtime.recoveries) == 1
        record = runtime.recoveries[0]
        assert isinstance(record, RecoveryRecord)
        assert record.address == "node:S"
        assert record.from_checkpoint
        assert record.downtime == pytest.approx(5.0)
        assert record.recovery_time >= 0.0
        assert runtime.utility() >= 0.99 * pre_fault

    def test_cold_restart_recorded_as_cold(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S", cold=True),
        )
        runtime.run_until(200.0)
        assert len(runtime.recoveries) == 1
        assert not runtime.recoveries[0].from_checkpoint

    def test_no_checkpointing_means_cold_restart(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S", checkpoint_interval=None),
        )
        runtime.run_until(200.0)
        assert len(runtime.recoveries) == 1
        assert not runtime.recoveries[0].from_checkpoint

    def test_faulty_run_is_deterministic(self, tiny_problem):
        plan = FaultPlan.random(
            tiny_problem, seed=9, horizon=150.0, crash_rate=0.03, warmup=20.0
        )
        runs = []
        for _ in range(2):
            runtime = AsynchronousRuntime(
                tiny_problem, AsyncConfig(seed=9), fault_plan=plan
            )
            runtime.run_until(150.0)
            runs.append(
                (runtime.samples, runtime.recoveries, runtime.messages_sent)
            )
        assert runs[0] == runs[1]


class TestPartitionsAndStorms:
    def test_partition_drops_crossing_messages_then_heals(self, tiny_problem):
        plan = FaultPlan(
            partitions=(
                PartitionFault(
                    at=20.0, duration=10.0, isolated=frozenset({"src:fa"})
                ),
            )
        )
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=3), fault_plan=plan
        )
        runtime.run_until(20.0)
        assert runtime.messages_partitioned == 0
        runtime.run_until(30.0)
        dropped_during = runtime.messages_partitioned
        assert dropped_during > 0
        runtime.run_until(60.0)
        # Healed: only deliveries already in flight at heal time can still
        # be counted, so the counter stops growing shortly after.
        assert runtime.messages_partitioned <= dropped_during + 5

    def test_partition_does_not_drop_internal_traffic(self, tiny_problem):
        # Isolating everything partitions nothing: no message crosses a cut.
        fleet = frozenset(agent_addresses(tiny_problem))
        plan = FaultPlan(
            partitions=(PartitionFault(at=5.0, duration=20.0, isolated=fleet),)
        )
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=3), fault_plan=plan
        )
        runtime.run_until(40.0)
        assert runtime.messages_partitioned == 0

    def test_storm_multiplies_latency(self, tiny_problem):
        plan = FaultPlan(
            storms=(DelayStorm(at=10.0, duration=20.0, factor=40.0),)
        )
        sink = MemorySink()
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=plan,
            telemetry=Telemetry(sink=sink),
        )
        runtime.run_until(60.0)
        latencies = [event.latency for event in sink.of_kind("message")]
        baseline = max(
            latency for latency in latencies if latency < 1.0
        )
        stormy = max(latencies)
        assert stormy > 5.0 * baseline

    def test_fault_events_emitted(self, tiny_problem):
        plan = FaultPlan(
            crashes=(CrashFault(at=10.0, address="node:S", restart_after=5.0),),
            partitions=(
                PartitionFault(at=12.0, duration=4.0, isolated=frozenset({"src:fa"})),
            ),
            storms=(DelayStorm(at=14.0, duration=4.0, factor=5.0),),
        )
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=3), fault_plan=plan, telemetry=telemetry
        )
        runtime.run_until(60.0)
        kinds = [event.fault for event in sink.of_kind("fault_injected")]
        assert kinds == [
            "crash",
            "partition",
            "delay_storm",
            "partition_heal",
            "delay_storm_end",
        ]
        restarts = sink.of_kind("agent_restarted")
        assert len(restarts) == 1
        assert restarts[0].agent == "node:S"
        assert restarts[0].downtime == pytest.approx(5.0)
        assert telemetry.registry.counter("runtime.async.faults").value == 5
        histogram = telemetry.registry.histogram("runtime.async.recovery_time")
        assert histogram.count == len(runtime.recoveries) == 1


class TestProtocolHardening:
    def test_messages_carry_monotone_sequences(self, tiny_problem):
        # Latency spread wider than the activation period guarantees
        # same-channel overtaking; the overtaken updates must be rejected.
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3, latency_mean=0.9, latency_jitter=1.0),
        )
        runtime.run_until(30.0)
        assert runtime.messages_stale > 0

    def test_stale_rejection_is_per_channel(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem, AsyncConfig(seed=3))
        runtime.run_until(50.0)
        seen = runtime._last_seen
        assert seen
        assert all(seq >= 0 for seq in seen.values())

    def test_retry_retransmits_under_loss(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3, loss_probability=0.3),
            retry=RetryPolicy(timeout=1.5, max_retries=3),
        )
        runtime.run_until(80.0)
        assert runtime.messages_lost > 0
        assert runtime.retransmissions > 0

    def test_retry_abandons_when_recipient_stays_down(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3),
            fault_plan=crash_plan("node:S", at=20.0, restart_after=None),
            retry=RetryPolicy(timeout=1.0, max_retries=2),
        )
        runtime.run_until(80.0)
        assert runtime.retries_abandoned > 0

    def test_retry_does_not_break_convergence(self, tiny_problem):
        plain = AsynchronousRuntime(tiny_problem, AsyncConfig(seed=3))
        plain.run_until(150.0)
        retried = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3, loss_probability=0.2),
            retry=RetryPolicy(timeout=1.5, max_retries=3),
        )
        retried.run_until(150.0)
        assert retried.converged_utility() == pytest.approx(
            plain.converged_utility(), rel=0.02
        )

    def test_retransmission_reuses_sequence_number(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=3, loss_probability=0.4),
            retry=RetryPolicy(timeout=1.0, max_retries=3),
        )
        runtime.run_until(40.0)
        # Duplicates from retransmit-racing-the-ack are suppressed as stale,
        # never double-applied; the counters prove both paths ran.
        assert runtime.retransmissions > 0
        assert runtime.messages_stale > 0


@pytest.mark.chaos
class TestChaosConvergence:
    """Longer randomized-fault runs; kept behind the ``chaos`` marker."""

    def test_survives_random_fault_storm(self, base_problem):
        plan = FaultPlan.random(
            base_problem,
            seed=17,
            horizon=250.0,
            crash_rate=0.02,
            mean_downtime=5.0,
            partition_rate=0.005,
            mean_partition=8.0,
            storm_rate=0.005,
            mean_storm=8.0,
            storm_factor=5.0,
            warmup=40.0,
        )
        assert plan.fault_count > 0
        runtime = AsynchronousRuntime(
            base_problem,
            AsyncConfig(seed=17),
            fault_plan=plan,
            retry=RetryPolicy(timeout=2.0, max_retries=3),
        )
        runtime.run_until(400.0)
        baseline = AsynchronousRuntime(base_problem, AsyncConfig(seed=17))
        baseline.run_until(400.0)
        assert runtime.converged_utility() == pytest.approx(
            baseline.converged_utility(), rel=0.05
        )
