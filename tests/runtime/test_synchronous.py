"""Tests for the synchronous message-passing deployment.

The headline property: the distributed agents, run in barrier rounds,
produce exactly the reference driver's trajectory.
"""

import pytest

from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible
from repro.runtime.synchronous import SynchronousRuntime


class TestEquivalenceWithReferenceDriver:
    def test_adaptive_gamma_trajectories_identical(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(80)
        runtime = SynchronousRuntime(base_problem, node_gamma=AdaptiveGamma())
        runtime.run(80)
        assert runtime.utilities == pytest.approx(reference.utilities, rel=1e-12)

    def test_fixed_gamma_trajectories_identical(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.fixed(0.05))
        reference.run(60)
        runtime = SynchronousRuntime(base_problem, node_gamma=FixedGamma(0.05))
        runtime.run(60)
        assert runtime.utilities == pytest.approx(reference.utilities, rel=1e-12)

    def test_allocations_identical(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(50)
        runtime = SynchronousRuntime(base_problem, node_gamma=AdaptiveGamma())
        runtime.run(50)
        assert runtime.allocation().rates == pytest.approx(
            reference.allocation().rates
        )
        assert runtime.allocation().populations == reference.allocation().populations

    def test_prices_identical(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(50)
        runtime = SynchronousRuntime(base_problem, node_gamma=AdaptiveGamma())
        runtime.run(50)
        assert runtime.node_prices() == pytest.approx(reference.node_prices())


class TestRuntimeMechanics:
    def test_counts_messages(self, base_problem):
        runtime = SynchronousRuntime(base_problem)
        runtime.run(1)
        # Per round: each flow sends one RateUpdate per consumer node it
        # reaches (2 each, 6 flows = 12); each node sends one price update
        # per flow reaching it plus one population update per flow with
        # local classes (4+4 per node, 3 nodes = 24).
        assert runtime.messages_sent == 12 + 24

    def test_rounds_counted(self, tiny_problem):
        runtime = SynchronousRuntime(tiny_problem)
        runtime.run(7)
        assert runtime.rounds == 7

    def test_negative_rounds_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            SynchronousRuntime(tiny_problem).run(-1)

    def test_allocation_feasible_after_convergence(self, tiny_problem):
        runtime = SynchronousRuntime(tiny_problem)
        runtime.run(200)
        assert is_feasible(tiny_problem, runtime.allocation())

    def test_no_link_agents_for_infinite_links(self, base_problem):
        runtime = SynchronousRuntime(base_problem)
        assert runtime.link_prices() == {}
