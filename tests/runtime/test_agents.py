"""Unit tests for the protocol agents and messages."""

import pytest

from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.runtime.agents import (
    LinkAgent,
    NodeAgent,
    PopulationCollisionError,
    SourceAgent,
    link_address,
    merge_populations,
    node_address,
    source_address,
)
from repro.runtime.messages import (
    LinkPriceUpdate,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


class TestAddresses:
    def test_address_scheme(self):
        assert source_address("f0") == "src:f0"
        assert node_address("S1") == "node:S1"
        assert link_address("P->S1") == "link:P->S1"


class TestSourceAgent:
    def test_initial_rate_is_min(self, problem):
        agent = SourceAgent(problem, "fa")
        assert agent.rate == problem.flows["fa"].rate_min

    def test_act_with_no_feedback_maxes_rate(self, problem):
        agent = SourceAgent(problem, "fa")
        messages = agent.act(stamp=0.0)
        assert agent.rate == problem.flows["fa"].rate_max
        # One RateUpdate to the consumer node; the infinite link is skipped.
        assert len(messages) == 1
        assert isinstance(messages[0], RateUpdate)
        assert messages[0].recipient == node_address("S")

    def test_price_feedback_lowers_rate(self, problem):
        agent = SourceAgent(problem, "fa")
        agent.receive(
            PopulationUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", flow_id="fa", populations={"ca": 2, "cb": 0},
            )
        )
        agent.receive(
            NodePriceUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", price=5.0,
            )
        )
        agent.act(stamp=1.0)
        assert agent.rate < problem.flows["fa"].rate_max

    def test_averaging_window_smooths_prices(self, problem):
        smooth = SourceAgent(problem, "fa", averaging_window=2)
        sharp = SourceAgent(problem, "fa", averaging_window=1)
        for agent in (smooth, sharp):
            agent.receive(
                PopulationUpdate(
                    sender="node:S", recipient="src:fa", stamp=0.0,
                    node_id="S", flow_id="fa", populations={"ca": 2},
                )
            )
            for price in (0.0, 0.2):
                agent.receive(
                    NodePriceUpdate(
                        sender="node:S", recipient="src:fa", stamp=0.0,
                        node_id="S", price=price,
                    )
                )
            agent.act(stamp=1.0)
        # The averaged agent sees price 5, the sharp one sees 10.
        assert smooth.rate > sharp.rate

    def test_rejects_unknown_message(self, problem):
        agent = SourceAgent(problem, "fa")
        with pytest.raises(TypeError):
            agent.receive(
                RateUpdate(sender="x", recipient="src:fa", stamp=0.0,
                           flow_id="fa", rate=1.0)
            )


class TestNodeAgent:
    def test_allocates_and_reports(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        agent.receive(
            RateUpdate(sender="src:fa", recipient="node:S", stamp=0.0,
                       flow_id="fa", rate=5.0)
        )
        messages = agent.act(stamp=0.0)
        assert sum(agent.populations.values()) > 0
        kinds = {type(message) for message in messages}
        assert kinds == {NodePriceUpdate, PopulationUpdate}
        # One price + one population update per flow (fa, fb).
        assert len(messages) == 4

    def test_price_moves_toward_bc(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.5))
        agent.receive(
            RateUpdate(sender="src:fa", recipient="node:S", stamp=0.0,
                       flow_id="fa", rate=20.0)
        )
        before = agent.price
        agent.act(stamp=0.0)
        assert agent.price != before or agent.price == 0.0

    def test_ignores_rates_for_absent_flows(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        agent.receive(
            RateUpdate(sender="src:x", recipient="node:S", stamp=0.0,
                       flow_id="ghost", rate=99.0)
        )  # silently ignored
        agent.act(stamp=0.0)

    def test_rejects_unknown_message(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        with pytest.raises(TypeError):
            agent.receive(
                NodePriceUpdate(sender="x", recipient="node:S", stamp=0.0,
                                node_id="S", price=1.0)
            )


class TestLinkAgent:
    def test_tracks_usage_and_prices(self):
        problem = make_tiny_problem()
        # Rebuild with a finite link capacity so the agent prices it.
        from repro.model.entities import Link
        from repro.model.problem import build_problem

        links = [Link("P->S", tail="P", head="S", capacity=10.0)]
        problem = build_problem(
            nodes=problem.nodes.values(),
            links=links,
            flows=problem.flows.values(),
            classes=problem.classes.values(),
            routes=problem.routes,
            costs=problem.costs,
        )
        agent = LinkAgent(problem, "P->S", gamma=0.1)
        agent.receive(
            RateUpdate(sender="src:fa", recipient="link:P->S", stamp=0.0,
                       flow_id="fa", rate=20.0)
        )
        messages = agent.act(stamp=0.0)
        # Usage 20 (+1 fb at rate_min) > capacity 10 -> price rises.
        assert agent.price > 0.0
        assert all(isinstance(m, LinkPriceUpdate) for m in messages)
        assert len(messages) == 2  # one per flow on the link


class TestColdStartHold:
    """Regression: a source that has heard no prices must not assume the
    route is free.

    With ``assume_zero_prices=True`` (the synchronous default, where zero
    initial prices are shared knowledge) the first activation spikes to
    ``r_max``.  Asynchronous deployments pass ``False``: the source holds
    its current rate until the first price from the route arrives.
    """

    def test_async_cold_start_holds_rate_min(self, problem):
        agent = SourceAgent(problem, "fa", assume_zero_prices=False)
        messages = agent.act(stamp=0.0)
        assert agent.rate == problem.flows["fa"].rate_min  # no r_max spike
        # It still announces itself to the route while holding.
        assert len(messages) == 1
        assert isinstance(messages[0], RateUpdate)
        assert messages[0].rate == problem.flows["fa"].rate_min

    def test_first_price_releases_the_hold(self, problem):
        agent = SourceAgent(problem, "fa", assume_zero_prices=False)
        agent.act(stamp=0.0)
        agent.receive(
            PopulationUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", flow_id="fa", populations={"ca": 2, "cb": 0},
            )
        )
        agent.receive(
            NodePriceUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", price=0.01,
            )
        )
        agent.act(stamp=1.0)
        assert agent.rate > problem.flows["fa"].rate_min

    def test_restored_source_holds_checkpointed_rate(self, problem):
        # A checkpoint-restarted source resumes at the checkpointed rate,
        # not r_min and not r_max.
        warm = SourceAgent(problem, "fa")
        warm.receive(
            PopulationUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", flow_id="fa", populations={"ca": 2, "cb": 0},
            )
        )
        warm.receive(
            NodePriceUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", price=5.0,
            )
        )
        warm.act(stamp=1.0)
        restarted = SourceAgent(problem, "fa", assume_zero_prices=False)
        restarted.restore(warm.snapshot())
        assert restarted.rate == warm.rate
        restarted.act(stamp=2.0)  # prices restored too: acts immediately
        assert restarted.rate == warm.rate


class TestSnapshotRestore:
    def test_source_round_trip(self, problem):
        agent = SourceAgent(problem, "fa", averaging_window=3)
        agent.receive(
            NodePriceUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", price=2.5,
            )
        )
        agent.act(stamp=0.0)
        clone = SourceAgent(problem, "fa", averaging_window=3)
        clone.restore(agent.snapshot())
        clone.act(stamp=1.0)
        agent.act(stamp=1.0)
        assert clone.rate == agent.rate

    def test_node_round_trip_preserves_price_and_gamma(self, problem):
        agent = NodeAgent(problem, "S", gamma=AdaptiveGamma())
        for stamp in range(5):
            agent.receive(
                RateUpdate(sender="src:fa", recipient="node:S", stamp=float(stamp),
                           flow_id="fa", rate=20.0)
            )
            agent.act(stamp=float(stamp))
        clone = NodeAgent(problem, "S", gamma=AdaptiveGamma())
        clone.restore(agent.snapshot())
        assert clone.price == agent.price
        assert clone.populations == agent.populations
        clone.act(stamp=5.0)
        agent.act(stamp=5.0)
        assert clone.price == agent.price  # gamma state restored too

    def test_restore_ignores_foreign_keys(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        state = agent.snapshot()
        state["rates"]["ghost-flow"] = 99.0
        state["populations"]["ghost-class"] = 7
        agent.restore(state)
        assert "ghost-flow" not in agent._rates
        assert "ghost-class" not in agent.populations

    def test_base_agent_snapshot_not_implemented(self):
        from repro.runtime.agents import Agent

        agent = Agent("x")
        with pytest.raises(NotImplementedError):
            agent.snapshot()
        with pytest.raises(NotImplementedError):
            agent.restore({})


class _StubNode:
    def __init__(self, address, populations):
        self.address = address
        self.populations = populations


class TestMergePopulations:
    def test_merges_disjoint_reports(self):
        merged = merge_populations(
            [_StubNode("node:A", {"ca": 1}), _StubNode("node:B", {"cb": 2})]
        )
        assert merged == {"ca": 1, "cb": 2}

    def test_same_agent_may_report_twice(self):
        node = _StubNode("node:A", {"ca": 1})
        assert merge_populations([node, node]) == {"ca": 1}

    def test_collision_raises_instead_of_silently_overwriting(self):
        # Regression: dict.update kept whichever node iterated last,
        # silently double-counting consumers re-homed across agents.
        with pytest.raises(PopulationCollisionError, match="ca"):
            merge_populations(
                [_StubNode("node:A", {"ca": 1}), _StubNode("node:B", {"ca": 3})]
            )


class TestMessages:
    def test_population_update_payload_frozen(self):
        update = PopulationUpdate(
            sender="a", recipient="b", stamp=0.0,
            node_id="S", flow_id="f", populations={"c": 3},
        )
        with pytest.raises(TypeError):
            update.populations["c"] = 5
