"""Unit tests for the protocol agents and messages."""

import pytest

from repro.core.gamma import FixedGamma
from repro.runtime.agents import (
    LinkAgent,
    NodeAgent,
    SourceAgent,
    link_address,
    node_address,
    source_address,
)
from repro.runtime.messages import (
    LinkPriceUpdate,
    NodePriceUpdate,
    PopulationUpdate,
    RateUpdate,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


class TestAddresses:
    def test_address_scheme(self):
        assert source_address("f0") == "src:f0"
        assert node_address("S1") == "node:S1"
        assert link_address("P->S1") == "link:P->S1"


class TestSourceAgent:
    def test_initial_rate_is_min(self, problem):
        agent = SourceAgent(problem, "fa")
        assert agent.rate == problem.flows["fa"].rate_min

    def test_act_with_no_feedback_maxes_rate(self, problem):
        agent = SourceAgent(problem, "fa")
        messages = agent.act(stamp=0.0)
        assert agent.rate == problem.flows["fa"].rate_max
        # One RateUpdate to the consumer node; the infinite link is skipped.
        assert len(messages) == 1
        assert isinstance(messages[0], RateUpdate)
        assert messages[0].recipient == node_address("S")

    def test_price_feedback_lowers_rate(self, problem):
        agent = SourceAgent(problem, "fa")
        agent.receive(
            PopulationUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", flow_id="fa", populations={"ca": 2, "cb": 0},
            )
        )
        agent.receive(
            NodePriceUpdate(
                sender="node:S", recipient="src:fa", stamp=0.0,
                node_id="S", price=5.0,
            )
        )
        agent.act(stamp=1.0)
        assert agent.rate < problem.flows["fa"].rate_max

    def test_averaging_window_smooths_prices(self, problem):
        smooth = SourceAgent(problem, "fa", averaging_window=2)
        sharp = SourceAgent(problem, "fa", averaging_window=1)
        for agent in (smooth, sharp):
            agent.receive(
                PopulationUpdate(
                    sender="node:S", recipient="src:fa", stamp=0.0,
                    node_id="S", flow_id="fa", populations={"ca": 2},
                )
            )
            for price in (0.0, 0.2):
                agent.receive(
                    NodePriceUpdate(
                        sender="node:S", recipient="src:fa", stamp=0.0,
                        node_id="S", price=price,
                    )
                )
            agent.act(stamp=1.0)
        # The averaged agent sees price 5, the sharp one sees 10.
        assert smooth.rate > sharp.rate

    def test_rejects_unknown_message(self, problem):
        agent = SourceAgent(problem, "fa")
        with pytest.raises(TypeError):
            agent.receive(
                RateUpdate(sender="x", recipient="src:fa", stamp=0.0,
                           flow_id="fa", rate=1.0)
            )


class TestNodeAgent:
    def test_allocates_and_reports(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        agent.receive(
            RateUpdate(sender="src:fa", recipient="node:S", stamp=0.0,
                       flow_id="fa", rate=5.0)
        )
        messages = agent.act(stamp=0.0)
        assert sum(agent.populations.values()) > 0
        kinds = {type(message) for message in messages}
        assert kinds == {NodePriceUpdate, PopulationUpdate}
        # One price + one population update per flow (fa, fb).
        assert len(messages) == 4

    def test_price_moves_toward_bc(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.5))
        agent.receive(
            RateUpdate(sender="src:fa", recipient="node:S", stamp=0.0,
                       flow_id="fa", rate=20.0)
        )
        before = agent.price
        agent.act(stamp=0.0)
        assert agent.price != before or agent.price == 0.0

    def test_ignores_rates_for_absent_flows(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        agent.receive(
            RateUpdate(sender="src:x", recipient="node:S", stamp=0.0,
                       flow_id="ghost", rate=99.0)
        )  # silently ignored
        agent.act(stamp=0.0)

    def test_rejects_unknown_message(self, problem):
        agent = NodeAgent(problem, "S", gamma=FixedGamma(0.1))
        with pytest.raises(TypeError):
            agent.receive(
                NodePriceUpdate(sender="x", recipient="node:S", stamp=0.0,
                                node_id="S", price=1.0)
            )


class TestLinkAgent:
    def test_tracks_usage_and_prices(self):
        problem = make_tiny_problem()
        # Rebuild with a finite link capacity so the agent prices it.
        from repro.model.entities import Link
        from repro.model.problem import build_problem

        links = [Link("P->S", tail="P", head="S", capacity=10.0)]
        problem = build_problem(
            nodes=problem.nodes.values(),
            links=links,
            flows=problem.flows.values(),
            classes=problem.classes.values(),
            routes=problem.routes,
            costs=problem.costs,
        )
        agent = LinkAgent(problem, "P->S", gamma=0.1)
        agent.receive(
            RateUpdate(sender="src:fa", recipient="link:P->S", stamp=0.0,
                       flow_id="fa", rate=20.0)
        )
        messages = agent.act(stamp=0.0)
        # Usage 20 (+1 fb at rate_min) > capacity 10 -> price rises.
        assert agent.price > 0.0
        assert all(isinstance(m, LinkPriceUpdate) for m in messages)
        assert len(messages) == 2  # one per flow on the link


class TestMessages:
    def test_population_update_payload_frozen(self):
        update = PopulationUpdate(
            sender="a", recipient="b", stamp=0.0,
            node_id="S", flow_id="f", populations={"c": 3},
        )
        with pytest.raises(TypeError):
            update.populations["c"] = 5
