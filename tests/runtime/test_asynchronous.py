"""Tests for the asynchronous (discrete-event) deployment."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime


class TestDeterminism:
    def test_same_seed_same_samples(self, base_problem):
        a = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        b = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.samples == b.samples
        assert a.messages_sent == b.messages_sent

    def test_different_seed_different_trajectory(self, base_problem):
        a = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        b = AsynchronousRuntime(base_problem, AsyncConfig(seed=4))
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.samples != b.samples


class TestConvergence:
    def test_reaches_synchronous_utility(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(200)
        runtime = AsynchronousRuntime(base_problem, AsyncConfig(seed=42))
        runtime.run_until(200.0)
        assert runtime.converged_utility() == pytest.approx(
            reference.utilities[-1], rel=0.02
        )

    def test_robust_to_message_loss(self, base_problem):
        runtime = AsynchronousRuntime(
            base_problem,
            AsyncConfig(seed=7, loss_probability=0.2, averaging_window=3),
        )
        runtime.run_until(250.0)
        assert runtime.messages_lost > 0
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(250)
        assert runtime.converged_utility() == pytest.approx(
            reference.utilities[-1], rel=0.05
        )

    def test_allocation_feasible_at_end(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem, AsyncConfig(seed=1))
        runtime.run_until(300.0)
        assert is_feasible(tiny_problem, runtime.allocation())


class TestMechanics:
    def test_samples_spaced_by_interval(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=0, sample_interval=2.0)
        )
        runtime.run_until(21.0)
        times = [t for t, _ in runtime.samples]
        assert times == pytest.approx([2.0 * k for k in range(1, 11)])

    def test_run_until_past_time_rejected(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        runtime.run_until(10.0)
        with pytest.raises(ValueError):
            runtime.run_until(5.0)

    def test_converged_utility_requires_samples(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        with pytest.raises(RuntimeError):
            runtime.converged_utility()

    def test_clock_monotone(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        runtime.run_until(5.0)
        assert runtime.now == 5.0
        runtime.run_until(9.0)
        assert runtime.now == 9.0


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AsyncConfig(activation_period=0.0)
        with pytest.raises(ValueError):
            AsyncConfig(period_jitter=1.0)
        with pytest.raises(ValueError):
            AsyncConfig(latency_mean=-0.1)
        with pytest.raises(ValueError):
            AsyncConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            AsyncConfig(averaging_window=0)
        with pytest.raises(ValueError):
            AsyncConfig(sample_interval=0.0)
