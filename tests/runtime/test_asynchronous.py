"""Tests for the asynchronous (discrete-event) deployment."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible
from repro.obs import MemorySink, Telemetry
from repro.runtime.asynchronous import AsyncConfig, AsynchronousRuntime


class TestDeterminism:
    def test_same_seed_same_samples(self, base_problem):
        a = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        b = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.samples == b.samples
        assert a.messages_sent == b.messages_sent

    def test_different_seed_different_trajectory(self, base_problem):
        a = AsynchronousRuntime(base_problem, AsyncConfig(seed=3))
        b = AsynchronousRuntime(base_problem, AsyncConfig(seed=4))
        a.run_until(30.0)
        b.run_until(30.0)
        assert a.samples != b.samples


class TestConvergence:
    def test_reaches_synchronous_utility(self, base_problem):
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(200)
        runtime = AsynchronousRuntime(base_problem, AsyncConfig(seed=42))
        runtime.run_until(200.0)
        assert runtime.converged_utility() == pytest.approx(
            reference.utilities[-1], rel=0.02
        )

    def test_robust_to_message_loss(self, base_problem):
        runtime = AsynchronousRuntime(
            base_problem,
            AsyncConfig(seed=7, loss_probability=0.2, averaging_window=3),
        )
        runtime.run_until(250.0)
        assert runtime.messages_lost > 0
        reference = LRGP(base_problem, LRGPConfig.adaptive())
        reference.run(250)
        assert runtime.converged_utility() == pytest.approx(
            reference.utilities[-1], rel=0.05
        )

    def test_allocation_feasible_at_end(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem, AsyncConfig(seed=1))
        runtime.run_until(300.0)
        assert is_feasible(tiny_problem, runtime.allocation())


class TestMechanics:
    def test_samples_spaced_by_interval(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=0, sample_interval=2.0)
        )
        runtime.run_until(21.0)
        times = [t for t, _ in runtime.samples]
        assert times == pytest.approx([2.0 * k for k in range(1, 11)])

    def test_run_until_past_time_rejected(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        runtime.run_until(10.0)
        with pytest.raises(ValueError):
            runtime.run_until(5.0)

    def test_converged_utility_requires_samples(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        with pytest.raises(RuntimeError):
            runtime.converged_utility()

    def test_clock_monotone(self, tiny_problem):
        runtime = AsynchronousRuntime(tiny_problem)
        runtime.run_until(5.0)
        assert runtime.now == 5.0
        runtime.run_until(9.0)
        assert runtime.now == 9.0


class TestRunUntilBoundary:
    """Regression: events scheduled exactly at ``end_time`` fire in that
    call, exactly once.

    Samples used to be scheduled by repeated ``now + interval``, whose
    float accumulation drifts off the grid (15 additions of 0.1 give
    1.5000000000000002 > 1.5), so ``run_until(1.5)`` silently missed the
    boundary sample and a later call double-delivered the window.
    """

    def test_boundary_sample_fires_in_the_call_that_reaches_it(
        self, tiny_problem
    ):
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=0, sample_interval=0.1)
        )
        runtime.run_until(1.5)
        times = [t for t, _ in runtime.samples]
        assert times[-1] == 1.5  # exactly on the grid, not 1.5000000000000002
        assert len(times) == 15

    def test_boundary_event_fires_exactly_once_across_two_calls(
        self, tiny_problem
    ):
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=0, sample_interval=0.1)
        )
        runtime.run_until(1.5)
        first_window = list(runtime.samples)
        runtime.run_until(1.5)  # idempotent: nothing left at or before 1.5
        assert runtime.samples == first_window
        runtime.run_until(3.0)
        times = [t for t, _ in runtime.samples]
        assert times.count(1.5) == 1
        assert times == pytest.approx([0.1 * k for k in range(1, 31)])

    def test_samples_stay_on_the_absolute_grid(self, tiny_problem):
        runtime = AsynchronousRuntime(
            tiny_problem, AsyncConfig(seed=0, sample_interval=0.1)
        )
        runtime.run_until(50.0)
        times = [t for t, _ in runtime.samples]
        # Bit-exact grid membership: accumulation drift would fail this.
        assert times == [k * 0.1 for k in range(1, len(times) + 1)]


class TestLossPathAccounting:
    def test_loss_counters_and_latency_histogram_agree(self, tiny_problem):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        runtime = AsynchronousRuntime(
            tiny_problem,
            AsyncConfig(seed=11, loss_probability=0.3),
            telemetry=telemetry,
        )
        runtime.run_until(60.0)
        assert runtime.messages_lost > 0
        registry = telemetry.registry
        assert (
            registry.counter("runtime.async.messages_sent").value
            == runtime.messages_sent
        )
        assert (
            registry.counter("runtime.async.messages_lost").value
            == runtime.messages_lost
        )
        # Every received (non-lost, non-stale) message observes one latency
        # and emits one MessageEvent.
        message_events = sink.of_kind("message")
        histogram = registry.histogram("runtime.async.latency")
        assert histogram.count == len(message_events)
        assert (
            len(message_events)
            == runtime.messages_sent
            - runtime.messages_lost
            - runtime.messages_stale
        )
        assert all(event.latency >= 0.0 for event in message_events)

    def test_lossy_runs_are_seed_reproducible(self, tiny_problem):
        def run():
            runtime = AsynchronousRuntime(
                tiny_problem,
                AsyncConfig(seed=11, loss_probability=0.3),
            )
            runtime.run_until(60.0)
            return (
                runtime.samples,
                runtime.messages_sent,
                runtime.messages_lost,
                runtime.messages_stale,
            )

        assert run() == run()

    def test_distinct_seeds_lose_different_messages(self, tiny_problem):
        def lost(seed):
            runtime = AsynchronousRuntime(
                tiny_problem, AsyncConfig(seed=seed, loss_probability=0.3)
            )
            runtime.run_until(60.0)
            return runtime.messages_lost

        assert lost(1) != lost(2)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AsyncConfig(activation_period=0.0)
        with pytest.raises(ValueError):
            AsyncConfig(period_jitter=1.0)
        with pytest.raises(ValueError):
            AsyncConfig(latency_mean=-0.1)
        with pytest.raises(ValueError):
            AsyncConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            AsyncConfig(averaging_window=0)
        with pytest.raises(ValueError):
            AsyncConfig(sample_interval=0.0)
