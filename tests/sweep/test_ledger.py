"""The run ledger: append-only history of sweep invocations."""

import json

import pytest

from repro.sweep import (
    LEDGER_FILENAME,
    LEDGER_VERSION,
    ResultCache,
    RunConfig,
    RunLedger,
    render_ledger,
    run_sweep,
)

SPEC = (
    RunConfig(workload="micro", iterations=15),
    RunConfig(workload="micro", iterations=15, seed=1),
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRunLedgerStore:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append({"version": LEDGER_VERSION, "hits": 1})
        ledger.append({"version": LEDGER_VERSION, "hits": 2})
        records = ledger.records()
        assert [record["hits"] for record in records] == [1, 2]
        assert len(ledger) == 2
        assert ledger.path == tmp_path / LEDGER_FILENAME

    def test_missing_file_reads_as_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "nowhere")
        assert ledger.records() == []
        assert len(ledger) == 0

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append({"hits": 1})
        with ledger.path.open("a", encoding="utf-8") as stream:
            stream.write("{torn half-line\n")
            stream.write("[1, 2, 3]\n")  # parseable but not a record
        ledger.append({"hits": 2})
        records = ledger.records()
        assert [record["hits"] for record in records] == [1, 2]
        assert ledger.corrupt_lines == 2


class TestLedgerFromSweeps:
    def test_every_invocation_appends_one_record(self, cache):
        run_sweep(SPEC, cache=cache)
        run_sweep(SPEC, cache=cache)
        records = RunLedger(cache.root).records()
        assert len(records) == 2
        first, second = records
        assert (first["hits"], first["executed"]) == (0, 2)
        assert (second["hits"], second["executed"]) == (2, 0)
        # Same grid -> same spec hash; the ledger makes re-runs traceable.
        assert first["spec_hash"] == second["spec_hash"]
        assert first["cells_total"] == 2
        assert first["capture"] is False
        assert first["version"] == LEDGER_VERSION
        assert first["at"].endswith("+00:00")  # UTC, explicit

    def test_cell_seconds_cover_executed_cells_only(self, cache):
        run_sweep(SPEC, cache=cache)
        run_sweep(
            (*SPEC, RunConfig(workload="micro", iterations=15, seed=2)),
            cache=cache,
        )
        records = RunLedger(cache.root).records()
        assert set(records[0]["cell_seconds"]) == {
            "micro/lrgp/i15", "micro/lrgp/i15/s1",
        }
        # Second run: two hits, only the new cell executed.
        assert set(records[1]["cell_seconds"]) == {"micro/lrgp/i15/s2"}
        assert all(
            seconds > 0 for seconds in records[0]["cell_seconds"].values()
        )

    def test_capture_flag_is_recorded(self, cache):
        run_sweep(SPEC, cache=cache, capture=True)
        assert RunLedger(cache.root).records()[0]["capture"] is True

    def test_ledger_false_appends_nothing(self, cache):
        run_sweep(SPEC, cache=cache, ledger=False)
        assert len(RunLedger(cache.root)) == 0

    def test_failed_cells_are_counted(self, cache):
        spec = (
            RunConfig(workload="micro", iterations=15),
            RunConfig(workload="micro:shape=bogus", iterations=15),
        )
        run_sweep(spec, cache=cache)
        record = RunLedger(cache.root).records()[0]
        assert record["failed"] == 1
        assert record["executed"] == 2

    def test_records_are_canonical_json_lines(self, cache):
        run_sweep(SPEC, cache=cache)
        line = RunLedger(cache.root).path.read_text().splitlines()[0]
        record = json.loads(line)
        assert list(record) == sorted(record)  # canonical key order


class TestRenderLedger:
    def test_empty_ledger_renders_placeholder(self):
        assert "no runs recorded" in render_ledger([])

    def test_greppable_field_value_pairs(self, cache):
        run_sweep(SPEC, cache=cache)
        run_sweep(SPEC, cache=cache)
        text = render_ledger(RunLedger(cache.root).records())
        lines = text.splitlines()
        assert len(lines) == 2
        assert "hits=0 executed=2" in lines[0]
        assert "hits=2 executed=0" in lines[1]
        assert "capture=off" in lines[0]
        assert "cells/s" in lines[0]

    def test_limit_shows_newest_and_notes_the_rest(self):
        records = [
            {"hits": n, "executed": 0, "spec_hash": "abc123"}
            for n in range(5)
        ]
        text = render_ledger(records, limit=2)
        assert "hits=4" in text
        assert "hits=0" not in text
        assert "3 older run(s) not shown" in text

    def test_missing_fields_render_as_dashes(self):
        assert "hits=-" in render_ledger([{}])
