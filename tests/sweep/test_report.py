"""Sweep reporting: table, plan, CSV/JSON exports, bench payload."""

import csv
import io

import pytest

from repro.obs.bench import collect_metrics, metric_direction
from repro.sweep import (
    ResultCache,
    SweepSpec,
    bench_payload,
    plan_sweep,
    render_sweep_comparison,
    render_sweep_plan,
    render_sweep_report,
    run_sweep,
    sweep_to_csv,
    sweep_to_json,
)

SPEC = SweepSpec(
    workloads=("micro",),
    methods=("lrgp", "annealing"),
    iterations=(20,),
)


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    run_sweep(SPEC, cache=cache)
    return run_sweep(SPEC, cache=cache)  # all-hits pass


class TestRenderReport:
    def test_one_line_per_cell_plus_summary(self, result):
        text = render_sweep_report(result)
        assert "micro/lrgp/i20" in text
        assert "micro/annealing/i20" in text
        assert "2 cached, 0 executed" in text

    def test_marks_cache_vs_run(self, result):
        assert "cache" in render_sweep_report(result)


class TestRenderPlan:
    def test_plan_lists_status_and_totals(self, result, tmp_path):
        empty = ResultCache(tmp_path / "empty")
        text = render_sweep_plan(plan_sweep(SPEC, empty))
        assert text.count("miss") == 2
        assert "2 to execute" in text

    def test_forced_plan_announces_forced(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SPEC, cache=cache)
        text = render_sweep_plan(plan_sweep(SPEC, cache, force=True))
        assert "(2 forced)" in text


class TestCsv:
    def test_parses_with_one_row_per_cell(self, result):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(result))))
        assert len(rows) == 2
        assert rows[0]["label"] == "micro/lrgp/i20"
        assert float(rows[0]["utility"]) > 0
        assert rows[0]["cached"] == "True"


class TestJson:
    def test_export_carries_farm_bookkeeping_and_cells(self, result):
        payload = sweep_to_json(result)
        assert payload["cells_total"] == 2
        assert payload["hits"] == 2
        assert payload["executed"] == 0
        assert len(payload["cells"]) == 2
        assert payload["cells"][0]["config"]["workload"] == "micro"

    def test_export_is_canonical_json_serializable(self, result):
        from repro.canonical import canonical_json

        text = canonical_json(sweep_to_json(result))
        assert "NaN" not in text


class TestBenchPayload:
    def test_metrics_flatten_with_useful_directions(self, result):
        payload = bench_payload(result)
        flat = collect_metrics(payload, "sweep")
        utility_keys = [key for key in flat if key.endswith(".utility")]
        assert utility_keys
        assert all(
            metric_direction(key) == "higher" for key in utility_keys
        )
        assert metric_direction("sweep.farm.hit_rate") == "higher"
        assert metric_direction("sweep.farm.wall_time_seconds") == "lower"

    def test_farm_section_counts(self, result):
        farm = bench_payload(result)["farm"]
        assert farm["cells_total"] == 2
        assert farm["hit_rate"] == 1.0


class TestComparison:
    def test_utility_drop_is_a_regression(self, result):
        old = bench_payload(result)
        new = bench_payload(result)
        label = sorted(new["cells"])[0]
        new = {
            "farm": dict(new["farm"]),
            "cells": {
                name: dict(metrics) for name, metrics in new["cells"].items()
            },
        }
        new["cells"][label]["utility"] *= 0.5
        text = render_sweep_comparison(old, new)
        assert "1 regression(s)" in text

    def test_identical_payloads_are_stable(self, result):
        payload = bench_payload(result)
        text = render_sweep_comparison(payload, payload)
        assert "0 regression(s)" in text
