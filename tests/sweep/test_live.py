"""Live monitoring: the event stream, ETA math, straggler detection.

``SweepProgress`` is deliberately wall-clock free — the farm supplies
measured durations, the monitor only counts — so every derived quantity
here is deterministic and testable without sleeping.
"""

import io
import json

import pytest

from repro.sweep import (
    STRAGGLER_MIN_SAMPLES,
    JsonlEventWriter,
    ResultCache,
    RunConfig,
    SweepProgress,
    render_live_event,
    run_sweep,
)
from repro.sweep.live import _p95


@pytest.fixture
def events():
    return []


@pytest.fixture
def progress(events):
    return SweepProgress(total=4, jobs=2, emit=events.append)


class TestP95:
    def test_nearest_rank_small_samples(self):
        assert _p95([1.0]) == 1.0
        assert _p95([1.0, 2.0]) == 2.0
        assert _p95([3.0, 1.0, 2.0]) == 3.0

    def test_nearest_rank_twenty_samples(self):
        samples = [float(n) for n in range(1, 21)]
        # ceil(0.95 * 20) = 19 -> the 19th ordered value.
        assert _p95(samples) == 19.0


class TestSweepProgress:
    def test_started_event_counts_upfront_hits(self, progress, events):
        progress.sweep_started(pending=3)
        assert events == [
            {
                "event": "sweep_started",
                "cells_total": 4,
                "jobs": 2,
                "pending": 3,
                "hits": 1,
            }
        ]

    def test_cell_finished_tracks_running_totals(self, progress, events):
        progress.cell_finished(
            index=0, label="a", key="k0", cached=True, failed=False,
            seconds=0.0,
        )
        progress.cell_finished(
            index=1, label="b", key="k1", cached=False, failed=False,
            seconds=2.0,
        )
        hit, executed = events
        assert hit["status"] == "hit"
        assert hit["hit_rate"] == 1.0
        assert hit["eta_seconds"] is None  # no executed duration yet
        assert executed["status"] == "ok"
        assert executed["done"] == 2
        assert executed["hit_rate"] == 0.5
        # 2 remaining cells x 2.0s mean / min(jobs=2, remaining=2)
        assert executed["eta_seconds"] == pytest.approx(2.0)

    def test_failed_cell_status_and_count(self, progress, events):
        progress.cell_finished(
            index=0, label="bad", key="k", cached=False, failed=True,
            seconds=0.5,
        )
        assert events[0]["status"] == "failed"
        assert events[0]["failed"] == 1

    def test_straggler_needs_min_samples(self, events):
        progress = SweepProgress(total=20, jobs=1, emit=events.append)
        for index in range(STRAGGLER_MIN_SAMPLES - 1):
            progress.cell_finished(
                index=index, label=f"c{index}", key="k", cached=False,
                failed=False, seconds=1.0,
            )
        # Sample 4 would be an outlier, but the flag is not armed yet.
        progress.cell_finished(
            index=98, label="early-slow", key="k", cached=False,
            failed=False, seconds=100.0,
        )
        assert all(not event["straggler"] for event in events)

    def test_straggler_flags_cell_beyond_rolling_p95(self, events):
        progress = SweepProgress(total=20, jobs=1, emit=events.append)
        for index in range(STRAGGLER_MIN_SAMPLES):
            progress.cell_finished(
                index=index, label=f"c{index}", key="k", cached=False,
                failed=False, seconds=1.0,
            )
        progress.cell_finished(
            index=99, label="slow", key="k", cached=False, failed=False,
            seconds=50.0,
        )
        progress.cell_finished(
            index=100, label="normal", key="k", cached=False, failed=False,
            seconds=1.0,
        )
        by_label = {event["label"]: event for event in events}
        assert by_label["slow"]["straggler"] is True
        assert by_label["normal"]["straggler"] is False

    def test_cached_cells_never_skew_eta_or_straggler(self, events):
        progress = SweepProgress(total=10, jobs=1, emit=events.append)
        for index in range(8):
            progress.cell_finished(
                index=index, label=f"h{index}", key="k", cached=True,
                failed=False, seconds=0.0,
            )
        assert events[-1]["eta_seconds"] is None
        progress.cell_finished(
            index=8, label="run", key="k", cached=False, failed=False,
            seconds=3.0,
        )
        # 1 remaining cell at 3.0s mean.
        assert events[-1]["eta_seconds"] == pytest.approx(3.0)

    def test_finished_event_reports_throughput(self, progress, events):
        progress.cell_finished(
            index=0, label="a", key="k", cached=False, failed=False,
            seconds=1.0,
        )
        progress.sweep_finished(wall_time_seconds=2.0)
        final = events[-1]
        assert final["event"] == "sweep_finished"
        assert final["executed"] == 1
        assert final["cells_per_second"] == pytest.approx(0.5)


class TestRendering:
    def test_every_event_kind_renders(self):
        events = []
        progress = SweepProgress(total=2, jobs=1, emit=events.append)
        progress.sweep_started(pending=2)
        progress.cell_finished(
            index=0, label="micro/lrgp/i20", key="k", cached=False,
            failed=False, seconds=1.5,
        )
        progress.sweep_finished(wall_time_seconds=2.0)
        lines = [render_live_event(event) for event in events]
        assert "2 cell(s), 0 cached, 2 to execute" in lines[0]
        assert "[1/2] ok     micro/lrgp/i20" in lines[1]
        assert "sweep finished" in lines[2]

    def test_unknown_event_renders_nothing(self):
        assert render_live_event({"event": "mystery"}) is None

    def test_straggler_flag_is_visible(self):
        line = render_live_event(
            {
                "event": "cell_finished",
                "done": 7, "total": 9, "status": "ok", "label": "slow",
                "seconds": 9.0, "hit_rate": 0.0, "eta_seconds": 4.0,
                "straggler": True,
            }
        )
        assert "STRAGGLER" in line

    def test_jsonl_writer_emits_parseable_lines(self):
        stream = io.StringIO()
        writer = JsonlEventWriter(stream)
        writer({"event": "sweep_started", "cells_total": 1})
        writer({"event": "sweep_finished", "eta_seconds": None})
        lines = stream.getvalue().splitlines()
        assert [json.loads(line)["event"] for line in lines] == [
            "sweep_started", "sweep_finished",
        ]


class TestFarmIntegration:
    def test_run_sweep_emits_the_full_stream(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = (
            RunConfig(workload="micro", iterations=15),
            RunConfig(workload="micro", iterations=15, seed=1),
        )
        events = []
        run_sweep(spec, cache=cache, monitor=events.append)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert kinds.count("cell_finished") == 2
        assert events[-1]["executed"] == 2

    def test_hits_are_reported_upfront(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = (RunConfig(workload="micro", iterations=15),)
        run_sweep(spec, cache=cache)
        events = []
        run_sweep(spec, cache=cache, monitor=events.append)
        cell_events = [
            event for event in events if event["event"] == "cell_finished"
        ]
        assert [event["status"] for event in cell_events] == ["hit"]
        assert events[-1]["hits"] == 1

    def test_parallel_sweep_monitors_in_completion_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tuple(
            RunConfig(workload="micro", iterations=15, seed=seed)
            for seed in range(4)
        )
        events = []
        result = run_sweep(spec, cache=cache, jobs=2, monitor=events.append)
        finished = [
            event for event in events if event["event"] == "cell_finished"
        ]
        assert len(finished) == 4
        assert sorted(event["index"] for event in finished) == [0, 1, 2, 3]
        # Reassembly restores grid order regardless of completion order.
        assert [cell.config.seed for cell in result.cells] == [0, 1, 2, 3]
