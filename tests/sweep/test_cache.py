"""ResultCache: content addressing, atomicity, corruption recovery."""

import json

import pytest

from repro.sweep import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    RunConfig,
    cache_salt,
    default_cache_dir,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


CONFIG = RunConfig(workload="micro", iterations=10)
PAYLOAD = {"kind": "solve", "metrics": {"utility": 1.0}}


class TestAddressing:
    def test_key_is_salted_config_hash(self, cache):
        assert cache.key_for(CONFIG) == CONFIG.config_hash(cache_salt())

    def test_salt_carries_schema_and_package_version(self):
        import repro

        salt = cache_salt()
        assert salt["schema"] == CACHE_SCHEMA_VERSION
        assert salt["package"] == repro.__version__

    def test_paths_fan_out_by_key_prefix(self, cache):
        key = cache.key_for(CONFIG)
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_default_cache_dir_honors_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_cache_dir_falls_back_to_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweep"


class TestHitMiss:
    def test_miss_on_empty_cache(self, cache):
        assert cache.get(cache.key_for(CONFIG)) is None

    def test_put_then_get_round_trips_payload(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        entry = cache.get(key)
        assert entry is not None
        assert entry["payload"] == PAYLOAD
        assert entry["config"] == CONFIG.to_dict()

    def test_different_configs_get_different_entries(self, cache):
        other = RunConfig(workload="micro", iterations=20)
        assert cache.key_for(CONFIG) != cache.key_for(other)

    def test_put_overwrites(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        cache.put(key, CONFIG, {"kind": "solve", "metrics": {"utility": 2.0}})
        assert cache.get(key)["payload"]["metrics"]["utility"] == 2.0

    def test_len_and_entry_paths(self, cache):
        assert len(cache) == 0
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        assert len(cache) == 1
        assert [path.stem for path in cache.entry_paths()] == [key]

    def test_no_temp_debris_after_put(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        leftovers = [
            path
            for path in cache.root.rglob("*")
            if path.is_file() and path.suffix != ".json"
        ]
        assert leftovers == []


class TestCorruptionRecovery:
    def test_unparseable_entry_is_a_miss(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        cache.path_for(key).write_text("{definitely not json")
        assert cache.get(key) is None
        assert cache.corrupt_hits == 1

    def test_wrong_key_entry_is_a_miss(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        entry = json.loads(cache.path_for(key).read_text())
        entry["key"] = "0" * 64
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_stale_salt_entry_is_a_miss(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        entry = json.loads(cache.path_for(key).read_text())
        entry["salt"] = {"schema": -1, "package": "0.0.0"}
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_non_dict_payload_is_a_miss(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        entry = json.loads(cache.path_for(key).read_text())
        entry["payload"] = [1, 2, 3]
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_reput_repairs_corrupt_entry(self, cache):
        key = cache.key_for(CONFIG)
        cache.put(key, CONFIG, PAYLOAD)
        cache.path_for(key).write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, CONFIG, PAYLOAD)
        assert cache.get(key)["payload"] == PAYLOAD


class TestClean:
    def test_clean_removes_entries_and_shards(self, cache):
        for iterations in (10, 20, 30):
            config = RunConfig(workload="micro", iterations=iterations)
            cache.put(cache.key_for(config), config, PAYLOAD)
        assert len(cache) == 3
        assert cache.clean() == 3
        assert len(cache) == 0
        assert not any(cache.root.glob("??"))

    def test_clean_on_missing_root_is_zero(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clean() == 0
