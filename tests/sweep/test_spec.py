"""SweepSpec / RunConfig: validation, expansion, canonical hashing."""

import json

import pytest

from repro.sweep import RunConfig, SweepSpec, load_spec
from repro.sweep.spec import parse_gamma_policy


class TestGammaPolicy:
    def test_adaptive(self):
        assert parse_gamma_policy("adaptive") == ("adaptive", None)

    def test_fixed_with_step(self):
        assert parse_gamma_policy("fixed:0.05") == ("fixed", 0.05)

    @pytest.mark.parametrize(
        "policy", ["fixed", "fixed:", "fixed:abc", "fixed:-1", "linear:0.1", ""]
    )
    def test_rejects_malformed(self, policy):
        with pytest.raises(ValueError):
            parse_gamma_policy(policy)


class TestRunConfig:
    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.workload == "base"
        assert config.method == "lrgp"

    def test_workload_spec_canonicalizes(self):
        assert RunConfig(workload="flows-x4").workload == "flows:factor=4"
        assert (
            RunConfig(workload="tree:flows=2,depth=4").workload
            == "tree:depth=4,flows=2"
        )

    def test_two_spellings_share_one_hash(self):
        a = RunConfig(workload="flows-x4")
        b = RunConfig(workload="flows:factor=4")
        assert a.config_hash() == b.config_hash()

    def test_salt_changes_hash(self):
        config = RunConfig()
        assert config.config_hash() != config.config_hash({"schema": 2})

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            RunConfig(method="gradient-descent")

    def test_engine_on_non_engine_method_rejected(self):
        with pytest.raises(ValueError, match="does not take an engine"):
            RunConfig(method="annealing", engine="vectorized")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RunConfig(engine="quantum")

    def test_gamma_on_non_gamma_method_rejected(self):
        with pytest.raises(ValueError, match="does not take a gamma"):
            RunConfig(method="annealing", gamma="fixed:0.1")

    def test_unknown_fault_plan_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan"):
            RunConfig(fault_plan=(("explosion_rate", 1.0),))

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RunConfig(iterations=-1)

    def test_fault_plan_normalizes_sorted(self):
        config = RunConfig(
            fault_plan=(("warmup", 10), ("crash_rate", 0.1), ("horizon", 100))
        )
        assert config.fault_plan == (
            ("crash_rate", 0.1), ("horizon", 100.0), ("warmup", 10.0),
        )

    def test_round_trips_through_dict(self):
        config = RunConfig(
            workload="micro",
            method="lrgp",
            engine="vectorized",
            gamma="fixed:0.05",
            fault_plan=(("horizon", 100.0), ("crash_rate", 0.05)),
            iterations=40,
            seed=3,
            repeat=1,
        )
        clone = RunConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.config_hash() == config.config_hash()

    def test_label_is_compact_and_distinct(self):
        plain = RunConfig(workload="micro")
        seeded = RunConfig(workload="micro", seed=2)
        assert plain.label() == "micro/lrgp/i250"
        assert seeded.label() != plain.label()

    def test_is_picklable(self):
        import pickle

        config = RunConfig(workload="flows-x2", fault_plan=(("horizon", 50.0),))
        assert pickle.loads(pickle.dumps(config)) == config


class TestSweepSpec:
    def test_expand_is_cartesian_in_declared_order(self):
        spec = SweepSpec(
            workloads=("micro", "base"), iterations=(10, 20), seeds=(0,)
        )
        labels = [config.label() for config in spec.expand()]
        assert labels == [
            "micro/lrgp/i10",
            "micro/lrgp/i20",
            "base/lrgp/i10",
            "base/lrgp/i20",
        ]

    def test_engine_axis_collapses_for_non_engine_methods(self):
        spec = SweepSpec(
            workloads=("micro",),
            methods=("lrgp", "annealing"),
            engines=(None, "vectorized"),
            iterations=(10,),
        )
        cells = spec.expand()
        annealing = [c for c in cells if c.method == "annealing"]
        assert len(annealing) == 1  # duplicates dropped
        assert annealing[0].engine is None
        assert len([c for c in cells if c.method == "lrgp"]) == 2

    def test_gamma_axis_collapses_for_non_gamma_methods(self):
        spec = SweepSpec(
            workloads=("micro",),
            methods=("lrgp", "hill_climb"),
            gammas=("adaptive", "fixed:0.05"),
            iterations=(10,),
        )
        cells = spec.expand()
        assert len([c for c in cells if c.method == "hill_climb"]) == 1
        assert len([c for c in cells if c.method == "lrgp"]) == 2

    def test_repeats_produce_distinct_cells(self):
        spec = SweepSpec(workloads=("micro",), iterations=(10,), repeats=3)
        cells = spec.expand()
        assert [c.repeat for c in cells] == [0, 1, 2]
        assert len({c.config_hash() for c in cells}) == 3

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(
            workloads=("micro", "base"),
            methods=("lrgp", "annealing"),
            seeds=(0, 1),
            iterations=(10,),
        )
        assert [c.to_dict() for c in spec.expand()] == [
            c.to_dict() for c in spec.expand()
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(workloads=())

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            SweepSpec(repeats=0)

    def test_round_trips_through_dict(self):
        spec = SweepSpec(
            workloads=("micro",),
            methods=("lrgp",),
            engines=(None, "vectorized"),
            fault_plans=(None, {"horizon": 100.0, "crash_rate": 0.05}),
            iterations=(10, 20),
            seeds=(0, 1),
            repeats=2,
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown sweep-spec field"):
            SweepSpec.from_dict({"workloads": ["base"], "budget": 7})


class TestLoadSpec:
    def test_loads_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"workloads": ["micro"], "iterations": [10]})
        )
        spec = load_spec(path)
        assert spec.workloads == ("micro",)
        assert spec.iterations == (10,)

    def test_missing_file_reports_path(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read sweep spec"):
            load_spec(tmp_path / "nope.json")

    def test_unparseable_file_reports_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="unparseable sweep spec"):
            load_spec(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must be a JSON object"):
            load_spec(path)
