"""Worker-side telemetry capture and the farm-wide aggregate.

The load-bearing guarantee: ``--capture`` changes *observability*, never
*results*.  The bit-stable ``result``/``metrics`` payload sections must
be identical with capture on and off, cache keys must not move, and the
two-pass zero-executed property must hold with capture enabled.
"""

import pytest

from repro.canonical import canonical_json
from repro.obs import ConvergenceDiagnostics  # noqa: F401 - import guard
from repro.sweep import (
    TELEMETRY_VERSION,
    ResultCache,
    RunConfig,
    SweepSpec,
    aggregate_sweep_telemetry,
    capture_bundle,
    cell_phase_report,
    execute_run,
    run_sweep,
    telemetry_payload,
)

SPEC = SweepSpec(workloads=("micro",), seeds=(0, 1), iterations=(20,))


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCaptureBundle:
    def test_fresh_bundle_per_call(self):
        first, second = capture_bundle(), capture_bundle()
        assert first.registry is not second.registry
        assert first.profiler is not second.profiler

    def test_payload_shape(self):
        telemetry = capture_bundle()
        telemetry.registry.counter("events").inc(3)
        with telemetry.profiler.phase("cell"):
            pass
        payload = telemetry_payload(telemetry)
        assert payload["version"] == TELEMETRY_VERSION
        assert payload["metrics"]["counters"]["events"] == 3
        assert "cell" in payload["phases"]["phases"]
        assert set(payload["diagnostics"]) == {
            "iterations", "converged", "iterations_to_tolerance",
            "final_utility", "trailing_amplitude", "total_oscillations",
            "resources",
        }

    def test_payload_is_canonical_json_safe(self):
        telemetry = capture_bundle()
        with telemetry.profiler.phase("cell"):
            pass
        canonical_json(telemetry_payload(telemetry))  # must not raise


class TestExecuteRunCapture:
    def test_captured_payload_carries_telemetry(self):
        payload = execute_run(
            RunConfig(workload="micro", iterations=15), capture=True
        )
        telemetry = payload["telemetry"]
        assert telemetry["version"] == TELEMETRY_VERSION
        assert telemetry["metrics"]["counters"]["lrgp.iterations"] == 15
        assert "cell" in telemetry["phases"]["phases"]
        assert telemetry["diagnostics"]["iterations"] == 15
        assert canonical_json(payload)  # cacheable as-is

    def test_capture_does_not_change_results(self):
        config = RunConfig(workload="micro", iterations=15)
        plain = execute_run(config)
        captured = execute_run(config, capture=True)
        assert "telemetry" not in plain
        assert captured["result"] == plain["result"]
        assert captured["metrics"] == plain["metrics"]

    @pytest.mark.parametrize("method", ["annealing", "hill_climb"])
    def test_search_methods_still_ship_a_phase_tree(self, method):
        payload = execute_run(
            RunConfig(workload="micro", method=method, iterations=30),
            capture=True,
        )
        telemetry = payload["telemetry"]
        # Search methods take no telemetry config, but the cell-level
        # phase wrapper still measures them.
        assert "cell" in telemetry["phases"]["phases"]

    def test_fault_cell_captures_the_faulted_run(self):
        payload = execute_run(
            RunConfig(
                workload="micro",
                iterations=120,
                fault_plan=(("crash_rate", 0.01),),
                seed=3,
            ),
            capture=True,
        )
        plain = execute_run(
            RunConfig(
                workload="micro",
                iterations=120,
                fault_plan=(("crash_rate", 0.01),),
                seed=3,
            )
        )
        assert payload["result"] == plain["result"]
        assert payload["telemetry"]["diagnostics"]["iterations"] > 0


class TestSweepCapture:
    def test_cache_payload_bit_identical_with_and_without_capture(
        self, tmp_path
    ):
        config = RunConfig(workload="micro", iterations=15)
        plain_cache = ResultCache(tmp_path / "plain")
        captured_cache = ResultCache(tmp_path / "captured")
        spec = (config,)
        plain = run_sweep(spec, cache=plain_cache).cells[0]
        captured = run_sweep(
            spec, cache=captured_cache, capture=True
        ).cells[0]
        assert captured.key == plain.key
        assert captured.payload["result"] == plain.payload["result"]
        assert captured.payload["metrics"] == plain.payload["metrics"]
        assert canonical_json(
            captured.payload["result"]
        ) == canonical_json(plain.payload["result"])

    def test_two_pass_zero_executed_with_capture(self, cache):
        first = run_sweep(SPEC, cache=cache, capture=True)
        assert (first.hits, first.executed) == (0, 2)
        second = run_sweep(SPEC, cache=cache, capture=True)
        assert (second.hits, second.executed) == (2, 0)
        # Cache hits keep the telemetry their writer recorded.
        for cell in second.cells:
            assert cell.payload["telemetry"]["version"] == TELEMETRY_VERSION

    def test_cell_phase_report_round_trip(self, cache):
        result = run_sweep(SPEC, cache=cache, capture=True)
        for cell in result.cells:
            report = cell_phase_report(cell)
            assert report is not None
            assert report.find("cell") is not None
            assert report.total_self_wall_ns == report.total_wall_ns

    def test_uncaptured_cell_has_no_phase_report(self, cache):
        result = run_sweep(SPEC, cache=cache)
        for cell in result.cells:
            assert "telemetry" not in cell.payload
            assert cell_phase_report(cell) is None


class TestAggregate:
    def test_farm_aggregate_merges_all_cells(self, cache):
        result = run_sweep(SPEC, cache=cache, capture=True)
        farm = aggregate_sweep_telemetry(result)
        assert not farm.empty
        assert farm.cells_with_telemetry == farm.cells_total == 2
        # Counters sum across cells: every cell ran 20 iterations.
        assert farm.metrics.counters["lrgp.iterations"] == 40
        # The merged tree keeps the profiler invariant to the nanosecond.
        assert farm.phases.total_self_wall_ns == farm.phases.total_wall_ns
        per_cell = [cell_phase_report(cell) for cell in result.cells]
        assert farm.phases.total_wall_ns == sum(
            report.total_wall_ns for report in per_cell
        )

    def test_aggregate_without_capture_is_empty(self, cache):
        result = run_sweep(SPEC, cache=cache)
        farm = aggregate_sweep_telemetry(result)
        assert farm.empty
        assert farm.cells_with_telemetry == 0
        assert farm.cells_total == 2

    def test_partial_coverage_counts_only_captured_cells(self, cache):
        # First cell cached uncaptured, second executed with capture.
        run_sweep((RunConfig(workload="micro", iterations=20),), cache=cache)
        mixed = run_sweep(
            (
                RunConfig(workload="micro", iterations=20),
                RunConfig(workload="micro", iterations=20, seed=1),
            ),
            cache=cache,
            capture=True,
        )
        assert (mixed.hits, mixed.executed) == (1, 1)
        farm = aggregate_sweep_telemetry(mixed)
        assert farm.cells_with_telemetry == 1
        assert farm.cells_total == 2
