"""Failed cells are results, not grid aborts.

Regression: a cell raising inside ``run_sweep(jobs>1)`` used to
propagate out of the executor and abort the whole sweep — 23 finished
cells thrown away because the 24th had a bogus workload parameter.  Now
every cell failure becomes a structured failed-cell entry (keep-going
semantics); the good cells complete, cache, and the failed cell retries
on the next run because failures are never cached.
"""

import pytest

from repro.sweep import (
    ResultCache,
    RunConfig,
    SweepSpec,
    execute_run,
    run_sweep,
)

#: Constructs fine, then raises ValueError at workload materialization.
BAD = RunConfig(workload="base:shape=bogus", iterations=15)
GOOD = RunConfig(workload="micro", iterations=15)
GOOD2 = RunConfig(workload="micro", iterations=15, seed=1)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestExecuteRunStillRaises:
    def test_direct_callers_see_the_original_error(self):
        # Keep-going is a farm policy, not an execute_run behavior:
        # library callers running one cell want the exception.
        with pytest.raises(ValueError, match="bogus"):
            execute_run(BAD)


class TestKeepGoingSemantics:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_does_not_abort_the_grid(self, cache, jobs):
        # The regression: with jobs>1 this raised out of executor.map.
        result = run_sweep((GOOD, BAD, GOOD2), cache=cache, jobs=jobs)
        assert len(result.cells) == 3
        assert result.failed == 1
        assert result.executed == 3
        statuses = [cell.status for cell in result.cells]
        assert statuses == ["ok", "failed", "ok"]
        good, bad, good2 = result.cells
        assert good.metrics["utility"] > 0
        assert good2.metrics["utility"] > 0

    def test_failed_cell_entry_is_structured(self, cache):
        result = run_sweep((BAD,), cache=cache)
        cell = result.cells[0]
        assert cell.failed
        assert cell.payload["kind"] == "error"
        assert cell.error["type"] == "ValueError"
        assert "bogus" in cell.error["message"]
        assert cell.payload["result"] is None
        assert cell.payload["metrics"] == {}
        assert "wall_time_seconds" in cell.payload["timing"]

    def test_failures_are_never_cached_and_retry_next_run(self, cache):
        first = run_sweep((GOOD, BAD), cache=cache)
        assert (first.hits, first.executed, first.failed) == (0, 2, 1)
        second = run_sweep((GOOD, BAD), cache=cache)
        # Good cell hits; the failure re-executes (and fails again).
        assert (second.hits, second.executed, second.failed) == (1, 1, 1)

    def test_sweep_result_failed_counts_cells(self, cache):
        result = run_sweep((BAD,), cache=cache)
        assert result.failed == 1
        ok = run_sweep((GOOD,), cache=cache)
        assert ok.failed == 0

    def test_spec_expansion_errors_still_raise(self, cache):
        # Keep-going covers per-cell execution, not malformed grids:
        # an unexpandable spec is a caller error and must surface.
        spec = SweepSpec(workloads=("micro",), methods=("no-such-method",))
        with pytest.raises((KeyError, ValueError)):
            run_sweep(spec, cache=cache)


class TestFailureReporting:
    def test_report_marks_failed_cells(self, cache, capsys):
        from repro.sweep import render_sweep_report

        result = run_sweep((GOOD, BAD), cache=cache)
        text = render_sweep_report(result)
        assert "1 cell(s) FAILED" in text
        assert "failed: base:shape=bogus/lrgp/i15: ValueError:" in text
        # The CI grep contract on the summary line is intact.
        assert "0 cached, 2 executed" in text

    def test_csv_and_json_carry_status_and_error(self, cache):
        from repro.sweep import sweep_to_csv, sweep_to_json

        result = run_sweep((GOOD, BAD), cache=cache)
        csv_text = sweep_to_csv(result)
        header, good_row, bad_row = csv_text.splitlines()
        assert "status" in header and "error" in header
        assert ",ok," in good_row
        assert ',failed,"ValueError:' in bad_row
        payload = sweep_to_json(result)
        assert payload["failed"] == 1
        assert payload["cells"][1]["payload"]["kind"] == "error"

    def test_bench_payload_reports_failures_and_throughput(self, cache):
        from repro.sweep import bench_payload

        result = run_sweep((GOOD, BAD), cache=cache)
        farm = bench_payload(result)["farm"]
        assert farm["failed"] == 1
        assert farm["cells_per_second"] > 0
