"""The farm: execution, cache-first semantics, bit-equal re-runs."""

import pytest

from repro.sweep import (
    ResultCache,
    RunConfig,
    SweepSpec,
    execute_run,
    plan_sweep,
    run_sweep,
)

SPEC = SweepSpec(
    workloads=("micro",),
    methods=("lrgp", "annealing"),
    iterations=(20,),
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestExecuteRun:
    def test_solve_cell_payload_shape(self):
        payload = execute_run(RunConfig(workload="micro", iterations=15))
        assert payload["kind"] == "solve"
        assert payload["label"] == "micro/lrgp/i15"
        assert payload["metrics"]["utility"] > 0
        assert payload["metrics"]["iterations"] == 15
        assert payload["result"]["method"] == "lrgp"
        assert "wall_time_seconds" not in payload["result"]
        assert payload["timing"]["wall_time_seconds"] > 0

    def test_deterministic_solve_is_bit_equal_across_executions(self):
        config = RunConfig(workload="micro", iterations=15)
        first = execute_run(config)
        second = execute_run(config)
        assert first["result"] == second["result"]
        assert first["metrics"] == second["metrics"]

    def test_gamma_policy_reaches_the_solver(self):
        adaptive = execute_run(RunConfig(workload="micro", iterations=15))
        fixed = execute_run(
            RunConfig(workload="micro", iterations=15, gamma="fixed:0.5")
        )
        assert adaptive["result"] != fixed["result"]

    def test_seed_reaches_stochastic_methods(self):
        base = RunConfig(workload="micro", method="annealing", iterations=25)
        reseeded = RunConfig(
            workload="micro", method="annealing", iterations=25, seed=7
        )
        assert execute_run(base) != execute_run(reseeded)

    def test_fault_cell_reports_recovery_metrics(self):
        payload = execute_run(
            RunConfig(
                workload="micro",
                iterations=10,
                fault_plan=(
                    ("horizon", 100.0),
                    ("crash_rate", 0.05),
                    ("warmup", 20.0),
                ),
            )
        )
        assert payload["kind"] == "fault"
        assert 0.5 < payload["metrics"]["retention"] <= 1.001
        assert payload["metrics"]["recoveries"] >= 1
        assert payload["result"]["counters"]["messages_sent"] > 0


class TestRunSweep:
    def test_first_pass_executes_everything(self, cache):
        result = run_sweep(SPEC, cache=cache)
        assert result.executed == len(result.cells) == 2
        assert result.hits == 0

    def test_second_pass_executes_nothing(self, cache):
        run_sweep(SPEC, cache=cache)
        second = run_sweep(SPEC, cache=cache)
        assert second.executed == 0
        assert second.hits == len(second.cells) == 2

    def test_cached_and_fresh_results_are_bit_equal(self, cache):
        first = run_sweep(SPEC, cache=cache)
        second = run_sweep(SPEC, cache=cache)
        for fresh, cached in zip(first.cells, second.cells):
            assert cached.cached
            assert cached.payload["result"] == fresh.payload["result"]
            assert cached.payload["metrics"] == fresh.payload["metrics"]

    def test_force_re_executes_cached_cells(self, cache):
        run_sweep(SPEC, cache=cache)
        forced = run_sweep(SPEC, cache=cache, force=True)
        assert forced.executed == len(forced.cells)
        assert forced.hits == 0

    def test_cells_preserve_grid_order(self, cache):
        expected = [config.label() for config in SPEC.expand()]
        result = run_sweep(SPEC, cache=cache)
        assert [cell.label for cell in result.cells] == expected
        # a partially-warm cache must not reorder either
        extra = SweepSpec(
            workloads=("micro",),
            methods=("lrgp", "annealing", "hill_climb"),
            iterations=(20,),
        )
        warm = run_sweep(extra, cache=cache)
        assert [cell.label for cell in warm.cells] == [
            config.label() for config in extra.expand()
        ]
        assert warm.hits == 2 and warm.executed == 1

    def test_corrupt_entry_re_executes_and_repairs(self, cache):
        result = run_sweep(SPEC, cache=cache)
        victim = result.cells[0]
        cache.path_for(victim.key).write_text("{broken")
        repaired = run_sweep(SPEC, cache=cache)
        assert repaired.executed == 1
        assert repaired.hits == 1
        assert repaired.corrupt_entries == 1
        # the repaired entry is trusted again on the next pass
        final = run_sweep(SPEC, cache=cache)
        assert final.executed == 0

    def test_parallel_jobs_match_inline_results(self, cache, tmp_path):
        inline = run_sweep(SPEC, cache=cache)
        parallel = run_sweep(
            SPEC, jobs=2, cache=ResultCache(tmp_path / "cache2")
        )
        assert [cell.label for cell in parallel.cells] == [
            cell.label for cell in inline.cells
        ]
        for a, b in zip(inline.cells, parallel.cells):
            assert a.payload["result"] == b.payload["result"]

    def test_accepts_explicit_cell_list(self, cache):
        cells = SPEC.expand()[:1]
        result = run_sweep(cells, cache=cache)
        assert len(result.cells) == 1

    def test_rejects_bad_jobs(self, cache):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(SPEC, jobs=0, cache=cache)


class TestPlanSweep:
    def test_plan_reports_hit_miss(self, cache):
        plan = plan_sweep(SPEC, cache)
        assert [status for _, _, status in plan] == ["miss", "miss"]
        run_sweep(SPEC, cache=cache)
        plan = plan_sweep(SPEC, cache)
        assert [status for _, _, status in plan] == ["hit", "hit"]

    def test_plan_marks_forced_cells(self, cache):
        run_sweep(SPEC, cache=cache)
        plan = plan_sweep(SPEC, cache, force=True)
        assert [status for _, _, status in plan] == ["forced", "forced"]

    def test_plan_executes_nothing(self, cache):
        plan_sweep(SPEC, cache)
        assert len(cache) == 0
