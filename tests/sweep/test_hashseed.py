"""Cache keys and canonical hashes must not depend on ``PYTHONHASHSEED``.

The sweep cache's whole value proposition is that the same cell config
addresses the same entry on every machine, every process, every run.
Python's per-process hash randomization is the classic way that breaks
— ``set``/``dict`` ordering leaking into serialized forms — so this test
computes the full hash surface (RunConfig cache keys, grid expansion
hashes, LRGPConfig hashes, SolveResult canonical JSON) in fresh
interpreters under different hash seeds and asserts byte-identity.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[2]

#: Runs in a fresh interpreter: every canonical-hash surface on stdout.
_SCRIPT = """
import json
import sys

from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.core.lrgp import LRGPConfig
from repro.solve import solve
from repro.sweep import RunConfig, SweepSpec, cache_salt
from repro.workloads import get_workload

config = RunConfig(
    workload="tree:flows=2,depth=2",
    gamma="fixed:0.05",
    fault_plan=(("horizon", 80.0), ("crash_rate", 0.05), ("warmup", 10.0)),
    iterations=15,
    seed=3,
)
spec = SweepSpec(
    workloads=("micro", "flows-x2"),
    methods=("lrgp", "annealing"),
    engines=(None, "vectorized"),
    iterations=(10,),
    seeds=(0, 1),
)
result = solve(get_workload("micro"), iterations=12)

payload = {
    "cell_key": config.config_hash(cache_salt()),
    "grid_hashes": [cell.config_hash() for cell in spec.expand()],
    "lrgp_default": LRGPConfig().config_hash(),
    "lrgp_fixed": LRGPConfig(node_gamma=FixedGamma(0.05)).config_hash(),
    "lrgp_adaptive": LRGPConfig(node_gamma=AdaptiveGamma()).config_hash(),
    "solve_hash": result.config_hash(),
    "solve_json": result.canonical_json(),
}
json.dump(payload, sys.stdout, sort_keys=True)
"""


def _run_leg(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"PYTHONHASHSEED={hash_seed} leg failed:\n{completed.stderr}"
    )
    return completed.stdout


class TestHashSeedIndependence:
    @pytest.fixture(scope="class")
    def legs(self):
        return {seed: _run_leg(seed) for seed in ("0", "1", "12345")}

    def test_each_leg_produces_hashes(self, legs):
        for seed, output in legs.items():
            payload = json.loads(output)
            assert len(payload["cell_key"]) == 64, f"seed {seed}"
            assert payload["grid_hashes"], f"seed {seed}: empty grid"

    def test_hashes_are_byte_identical_across_hash_seeds(self, legs):
        outputs = set(legs.values())
        assert len(outputs) == 1, (
            "canonical hashes depend on PYTHONHASHSEED; an unordered "
            "set/dict is leaking into a canonical serialization "
            "(see lint rule R11 and repro.canonical)"
        )
