"""Tests for the unified ``repro.solve`` entry point."""

import json

import pytest

import repro
from repro.core.lrgp import LRGPConfig
from repro.solve import (
    ENGINE_METHODS,
    VECTORIZED_MIN_FLOWS,
    SolveResult,
    available_methods,
    solve,
)
from repro.utility.tolerance import ENGINE_EQUIVALENCE_RTOL
from repro.workloads.base import base_workload
from repro.workloads.bottleneck import link_bottleneck_workload
from repro.workloads.micro import micro_workload

ALL_METHODS = (
    "annealing",
    "coordinate",
    "hill_climb",
    "lrgp",
    "multirate",
    "random_search",
    "two_stage",
)

#: Small effort budgets so the whole matrix stays fast.
BUDGETS = {
    "lrgp": 60,
    "multirate": 60,
    "two_stage": 40,
    "annealing": 2_000,
    "hill_climb": 1_000,
    "random_search": 100,
    "coordinate": 6,
}


@pytest.fixture(scope="module")
def problem():
    return micro_workload()


class TestMethodMatrix:
    def test_available_methods(self):
        assert available_methods() == ALL_METHODS

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_returns_a_solve_result(self, problem, method):
        result = solve(problem, method, iterations=BUDGETS[method])
        assert isinstance(result, SolveResult)
        assert result.method == method
        assert result.utility > 0.0
        assert result.utilities
        assert result.iterations > 0
        assert result.wall_time_seconds >= 0.0
        if method in ENGINE_METHODS:
            assert result.engine == "reference"
        else:
            assert result.engine is None

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_result_is_json_ready(self, problem, method):
        result = solve(problem, method, iterations=BUDGETS[method])
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["method"] == method
        assert payload["utility"] == pytest.approx(result.utility)
        assert "populations" in payload["allocation"]


class TestLRGPFamily:
    def test_vectorized_engine_matches_reference(self):
        # base_workload sits above the dispatch crossover, so the
        # vectorized request is honored as-is.
        problem = base_workload()
        reference = solve(problem, "lrgp", iterations=80)
        vectorized = solve(problem, "lrgp", engine="vectorized", iterations=80)
        assert vectorized.engine == "vectorized"
        assert "engine_fallback" not in vectorized.metadata
        assert len(vectorized.utilities) == len(reference.utilities)
        for expected, actual in zip(reference.utilities, vectorized.utilities):
            assert actual == pytest.approx(
                expected, rel=ENGINE_EQUIVALENCE_RTOL, abs=1e-9
            )
        assert vectorized.converged_at == reference.converged_at

    def test_lrgp_metadata_carries_prices(self, problem):
        result = solve(problem, "lrgp", iterations=30)
        assert "S" in result.metadata["node_prices"]
        # Only bottleneck (finite-capacity) links maintain prices.
        bottleneck = solve(link_bottleneck_workload(100.0), iterations=30)
        assert "uplink" in bottleneck.metadata["link_prices"]

    def test_snapshot_config_exposes_records(self, problem):
        config = LRGPConfig(record_snapshots=True)
        result = solve(problem, "lrgp", iterations=20, config=config)
        records = result.metadata["records"]
        assert len(records) == 20
        assert records[0].rates is not None
        # Records are not JSON-representable and must not leak into JSON.
        assert "records" not in result.to_dict()["metadata"]

    def test_two_stage_trajectories(self, problem):
        result = solve(problem, "two_stage", iterations=40)
        assert result.iterations == len(result.utilities)
        assert result.metadata["stage2_utility"] == pytest.approx(
            result.utility
        )

    def test_two_stage_vectorized_engine(self):
        problem = base_workload()
        reference = solve(problem, "two_stage", iterations=40)
        vectorized = solve(
            problem, "two_stage", engine="vectorized", iterations=40
        )
        assert vectorized.engine == "vectorized"
        assert vectorized.utility == pytest.approx(
            reference.utility, rel=ENGINE_EQUIVALENCE_RTOL, abs=1e-9
        )

    def test_multirate_weakly_dominates_single_rate(self, problem):
        single = solve(problem, "lrgp", iterations=100)
        multi = solve(problem, "multirate", iterations=100)
        assert multi.utility >= single.utility - 1e-6
        assert multi.allocation.to_single_rate().rates


class TestEngineDispatch:
    """Small-problem fallback: ``engine="vectorized"`` below the measured
    crossover (BENCH_engines.json, "dispatch" section) runs the reference
    engine and says so in ``metadata["engine_fallback"]``."""

    def test_micro_workload_is_below_crossover(self, problem):
        assert len(problem.flows) < VECTORIZED_MIN_FLOWS

    @pytest.mark.parametrize("method", sorted(ENGINE_METHODS))
    def test_small_problem_falls_back_to_reference(self, problem, method):
        result = solve(problem, method, engine="vectorized", iterations=30)
        assert result.engine == "reference"
        fallback = result.metadata["engine_fallback"]
        assert fallback["requested"] == "vectorized"
        assert "crossover" in fallback["reason"]

    def test_fallback_trajectory_is_exactly_reference(self, problem):
        requested = solve(problem, "lrgp", engine="vectorized", iterations=60)
        reference = solve(problem, "lrgp", engine="reference", iterations=60)
        # Bit-identical, not approximately equal: the fallback *is* the
        # reference engine, not a vectorized run with looser tolerances.
        assert requested.utilities == reference.utilities
        assert "engine_fallback" not in reference.metadata

    def test_large_problem_honors_vectorized_request(self):
        problem = base_workload()
        assert len(problem.flows) >= VECTORIZED_MIN_FLOWS
        result = solve(problem, "lrgp", engine="vectorized", iterations=30)
        assert result.engine == "vectorized"
        assert "engine_fallback" not in result.metadata

    def test_explicit_reference_request_never_annotated(self, problem):
        result = solve(problem, "lrgp", engine="reference", iterations=10)
        assert result.engine == "reference"
        assert "engine_fallback" not in result.metadata

    def test_direct_driver_construction_bypasses_dispatch(self, problem):
        # Benchmark harnesses construct LRGP directly and must get the
        # engine they name, even below the crossover.
        optimizer = repro.LRGP(problem, engine="vectorized")
        assert optimizer.engine_name == "vectorized"

    def test_fallback_metadata_is_json_ready(self, problem):
        result = solve(problem, "lrgp", engine="vectorized", iterations=10)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["metadata"]["engine_fallback"]["requested"] == "vectorized"


class TestValidation:
    def test_unknown_method(self, problem):
        with pytest.raises(ValueError, match="unknown method"):
            solve(problem, "genetic")

    @pytest.mark.parametrize(
        "method", [m for m in ALL_METHODS if m not in ENGINE_METHODS]
    )
    def test_engine_rejected_for_non_lrgp_methods(self, problem, method):
        with pytest.raises(ValueError, match="engine"):
            solve(problem, method, engine="vectorized")

    def test_negative_iterations(self, problem):
        with pytest.raises(ValueError, match="non-negative"):
            solve(problem, iterations=-1)

    def test_unknown_option_rejected(self, problem):
        with pytest.raises(TypeError, match="unexpected options"):
            solve(problem, "lrgp", iterations=5, temperature=10.0)

    def test_unknown_engine_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown engine"):
            solve(problem, "lrgp", engine="turbo", iterations=5)


class TestLegacyAliases:
    def test_deprecated_attributes_resolve_with_warning(self, problem):
        result = solve(problem, "annealing", iterations=500)
        with pytest.warns(DeprecationWarning):
            assert result.best_utility == result.utility
        with pytest.warns(DeprecationWarning):
            assert result.final_utility == result.utility
        with pytest.warns(DeprecationWarning):
            assert result.best_allocation is result.allocation

    def test_metadata_keys_resolve_with_warning(self, problem):
        result = solve(problem, "annealing", iterations=500)
        with pytest.warns(DeprecationWarning):
            assert result.accepted == result.metadata["accepted"]

    def test_unknown_attribute_raises(self, problem):
        result = solve(problem, "lrgp", iterations=5)
        with pytest.raises(AttributeError):
            result.no_such_attribute


class TestTopLevelExport:
    def test_solve_is_the_package_front_door(self, problem):
        result = repro.solve(problem, iterations=30)
        assert isinstance(result, repro.SolveResult)
        assert "lrgp" in repro.available_methods()
