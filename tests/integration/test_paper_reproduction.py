"""End-to-end reproduction checks against the paper's published numbers.

These are the headline assertions of the whole repository: LRGP's utility
column of Table 2 and Table 3 (which does not depend on anyone's compute
budget) must match the paper within 1%, iteration counts must stay in the
paper's regime, and every qualitative claim must hold.
"""

import pytest

from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.workloads.base import base_workload
from repro.workloads.scaling import TABLE2_WORKLOADS

#: Table 2's LRGP columns: workload -> (iterations, utility).
PAPER_TABLE2 = {
    "6 flows, 3 c-nodes": (21, 1_328_821),
    "12 flows, 6 c-nodes": (21, 2_657_600),
    "24 flows, 12 c-nodes": (24, 5_313_612),
    "6 flows, 6 c-nodes": (22, 2_656_706),
    "6 flows, 12 c-nodes": (22, 5_313_412),
    "6 flows, 24 c-nodes": (22, 10_626_824),
}

#: Table 3's LRGP columns: shape -> (iterations, utility).
PAPER_TABLE3 = {
    "log": (21, 1_328_821),
    "pow25": (23, 926_185),
    "pow50": (28, 2_003_225),
    "pow75": (39, 4_735_044),
}


def run(problem, iterations=250):
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    optimizer.run(iterations)
    return optimizer


class TestTable2LRGPColumn:
    @pytest.mark.parametrize("label", list(PAPER_TABLE2))
    def test_utility_within_one_percent(self, label):
        optimizer = run(TABLE2_WORKLOADS[label](), iterations=120)
        _, paper_utility = PAPER_TABLE2[label]
        assert optimizer.utilities[-1] == pytest.approx(paper_utility, rel=0.01)

    @pytest.mark.parametrize("label", list(PAPER_TABLE2))
    def test_iterations_same_regime(self, label):
        optimizer = run(TABLE2_WORKLOADS[label](), iterations=120)
        iterations = iterations_until_convergence(optimizer.utilities)
        paper_iterations, _ = PAPER_TABLE2[label]
        assert iterations is not None
        # Paper: 21-24.  Allow up to 2x (criterion details differ).
        assert iterations <= 2 * paper_iterations


class TestTable3LRGPColumn:
    @pytest.mark.parametrize("shape", list(PAPER_TABLE3))
    def test_utility_within_one_percent(self, shape):
        optimizer = run(base_workload(shape))
        _, paper_utility = PAPER_TABLE3[shape]
        assert optimizer.utilities[-1] == pytest.approx(paper_utility, rel=0.01)

    def test_iterations_increase_with_exponent(self):
        """Section 4.5's claim: steeper utility -> slower convergence."""
        counts = {}
        for shape in ("log", "pow25", "pow50", "pow75"):
            optimizer = run(base_workload(shape))
            counts[shape] = iterations_until_convergence(optimizer.utilities)
        assert counts["pow25"] <= counts["pow50"] <= counts["pow75"]


class TestQualitativeClaims:
    def test_utility_scales_linearly_with_consumer_nodes(self):
        base = run(TABLE2_WORKLOADS["6 flows, 3 c-nodes"](), 120).utilities[-1]
        for label, factor in [
            ("6 flows, 6 c-nodes", 2),
            ("6 flows, 12 c-nodes", 4),
            ("6 flows, 24 c-nodes", 8),
        ]:
            scaled = run(TABLE2_WORKLOADS[label](), 120).utilities[-1]
            assert scaled == pytest.approx(factor * base, rel=0.005)

    def test_iteration_time_independent_of_scale(self):
        """Convergence iterations stay flat from 6 to 24 flows."""
        small = run(TABLE2_WORKLOADS["6 flows, 3 c-nodes"](), 120)
        large = run(TABLE2_WORKLOADS["24 flows, 12 c-nodes"](), 120)
        small_iters = iterations_until_convergence(small.utilities)
        large_iters = iterations_until_convergence(large.utilities)
        assert abs(large_iters - small_iters) <= 5
