"""Full-stack integration: optimizer -> runtime -> live infrastructure.

Exercises the complete pipeline a deployment would run: LRGP (distributed,
via the message-passing runtime) computes an allocation; the allocation is
enacted into the discrete-event pub/sub system; the metered resource
consumption matches the model that LRGP optimized against — closing the
loop between the optimizer's model and the "real" system.
"""

import pytest

from repro.core.gamma import AdaptiveGamma
from repro.events.simulator import EventInfrastructure
from repro.model.allocation import is_feasible, node_usage, total_utility
from repro.runtime.synchronous import SynchronousRuntime
from repro.workloads.base import base_workload


@pytest.fixture(scope="module")
def pipeline():
    problem = base_workload()
    runtime = SynchronousRuntime(problem, node_gamma=AdaptiveGamma())
    runtime.run(120)
    allocation = runtime.allocation()
    infra = EventInfrastructure(problem)
    infra.enact(allocation)
    comparisons = infra.measure(duration=2.0, settle=0.2)
    return problem, runtime, allocation, infra, comparisons


class TestPipeline:
    def test_distributed_allocation_feasible(self, pipeline):
        problem, _, allocation, _, _ = pipeline
        assert is_feasible(problem, allocation)

    def test_enacted_system_matches_model_predictions(self, pipeline):
        _, _, _, _, comparisons = pipeline
        node_comparisons = [
            c for c in comparisons if c.resource.startswith("node:")
        ]
        assert len(node_comparisons) == 3
        for comparison in node_comparisons:
            assert comparison.relative_error < 0.05, comparison

    def test_nodes_run_near_but_below_capacity(self, pipeline):
        """LRGP fills the nodes: usage lands in (90%, 100%] of c_b."""
        problem, _, allocation, _, _ = pipeline
        for node_id in problem.consumer_nodes():
            usage = node_usage(problem, allocation, node_id)
            capacity = problem.nodes[node_id].capacity
            assert 0.9 * capacity < usage <= capacity * (1 + 1e-9)

    def test_admitted_consumers_receive_traffic(self, pipeline):
        problem, _, allocation, infra, _ = pipeline
        for class_id, admitted in allocation.populations.items():
            consumers = infra.consumers[class_id]
            if admitted > 0:
                assert consumers[0].received > 0
            if admitted < len(consumers):
                assert consumers[-1].received == 0

    def test_delivered_utility_matches_recorded(self, pipeline):
        problem, runtime, allocation, _, _ = pipeline
        assert runtime.utilities[-1] == pytest.approx(
            total_utility(problem, allocation)
        )
