"""Unit tests for enactment policies (section 2.1)."""

import pytest

from repro.core.enactment import (
    Enactor,
    PeriodicEnactment,
    ThresholdEnactment,
    consumer_churn,
)
from repro.model.allocation import Allocation


def allocation(rates=None, populations=None):
    return Allocation(rates=dict(rates or {}), populations=dict(populations or {}))


class TestPeriodicEnactment:
    def test_first_offer_always_enacts(self):
        policy = PeriodicEnactment(period=5)
        assert policy.should_enact(3, allocation(), None)

    def test_enacts_on_period(self):
        policy = PeriodicEnactment(period=5)
        enacted = allocation()
        assert policy.should_enact(5, allocation(), enacted)
        assert policy.should_enact(10, allocation(), enacted)
        assert not policy.should_enact(7, allocation(), enacted)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicEnactment(period=0)


class TestThresholdEnactment:
    def test_first_offer_always_enacts(self):
        policy = ThresholdEnactment()
        assert policy.should_enact(1, allocation(), None)

    def test_small_changes_suppressed(self):
        policy = ThresholdEnactment(rate_rel_change=0.1, population_abs_change=10)
        enacted = allocation({"f": 100.0}, {"c": 50})
        computed = allocation({"f": 105.0}, {"c": 55})
        assert not policy.should_enact(2, computed, enacted)

    def test_rate_change_triggers(self):
        policy = ThresholdEnactment(rate_rel_change=0.1)
        enacted = allocation({"f": 100.0}, {})
        computed = allocation({"f": 120.0}, {})
        assert policy.should_enact(2, computed, enacted)

    def test_population_change_triggers(self):
        policy = ThresholdEnactment(population_abs_change=10)
        enacted = allocation({}, {"c": 50})
        computed = allocation({}, {"c": 61})
        assert policy.should_enact(2, computed, enacted)

    def test_disappearing_flow_triggers(self):
        policy = ThresholdEnactment()
        enacted = allocation({"f": 100.0}, {})
        computed = allocation({}, {})
        assert policy.should_enact(2, computed, enacted)

    def test_disappearing_class_triggers(self):
        policy = ThresholdEnactment()
        enacted = allocation({}, {"c": 5})
        computed = allocation({}, {})
        assert policy.should_enact(2, computed, enacted)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdEnactment(rate_rel_change=-0.1)
        with pytest.raises(ValueError):
            ThresholdEnactment(population_abs_change=-1)


class TestConsumerChurn:
    def test_from_none_counts_all_admissions(self):
        assert consumer_churn(None, allocation({}, {"a": 5, "b": 3})) == 8

    def test_symmetric_difference(self):
        before = allocation({}, {"a": 5, "b": 3})
        after = allocation({}, {"a": 2, "c": 4})
        # |2-5| + |0-3| + |4-0| = 10
        assert consumer_churn(before, after) == 10

    def test_no_change_zero_churn(self):
        state = allocation({}, {"a": 5})
        assert consumer_churn(state, state) == 0


class TestEnactor:
    def test_tracks_enactments_and_churn(self):
        enactor = Enactor(policy=PeriodicEnactment(period=2))
        enactor.offer(1, allocation({}, {"c": 10}))   # first: enacted
        enactor.offer(3, allocation({}, {"c": 20}))   # off-period: skipped
        enactor.offer(4, allocation({}, {"c": 20}))   # on-period: enacted
        assert enactor.enactments == 2
        assert enactor.total_churn == 10 + 10
        assert enactor.offers == 3
        assert [iteration for iteration, _ in enactor.history] == [1, 4]

    def test_enacted_allocation_is_a_copy(self):
        enactor = Enactor(policy=PeriodicEnactment(period=1))
        computed = allocation({}, {"c": 10})
        enactor.offer(1, computed)
        computed.populations["c"] = 99
        assert enactor.enacted.populations["c"] == 10

    def test_threshold_enactor_suppresses_noise(self):
        enactor = Enactor(policy=ThresholdEnactment(population_abs_change=5))
        enactor.offer(1, allocation({}, {"c": 100}))
        for iteration in range(2, 20):
            enactor.offer(iteration, allocation({}, {"c": 100 + iteration % 3}))
        assert enactor.enactments == 1
