"""Unit and property tests for the greedy consumer allocation (Algorithm 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consumer_allocation import (
    allocate_all_consumers,
    allocate_consumers,
    benefit_cost_ratio,
)
from repro.model.allocation import Allocation, node_usage
from repro.model.costs import CostModelBuilder
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import build_problem
from repro.utility.functions import LogUtility


def single_node_problem(class_specs, capacity, rate_bounds=(1.0, 100.0)):
    """One node, one flow per class spec: (scale, max_consumers, G)."""
    nodes = [Node("P"), Node("S", capacity=capacity)]
    links = [Link("P->S", tail="P", head="S")]
    flows, classes, routes = [], [], {}
    costs = CostModelBuilder()
    for index, (scale, max_consumers, consumer_cost) in enumerate(class_specs):
        flow_id = f"f{index}"
        flows.append(
            Flow(flow_id, source="P", rate_min=rate_bounds[0], rate_max=rate_bounds[1])
        )
        routes[flow_id] = Route(nodes=("P", "S"), links=("P->S",))
        class_id = f"c{index}"
        classes.append(
            ConsumerClass(class_id, flow_id, "S", max_consumers, LogUtility(scale=scale))
        )
        costs.set_consumer("S", class_id, consumer_cost)
        costs.set_link("P->S", flow_id, 1.0)
    return build_problem(nodes, links, flows, classes, routes, costs.build())


class TestBenefitCostRatio:
    def test_matches_equation_10(self, base_problem):
        # BC = rank * log(1+r) / (G * r)
        rate = 100.0
        ratio = benefit_cost_ratio(base_problem, "S0", "c00", rate)
        assert ratio == pytest.approx(20.0 * math.log(101.0) / (19.0 * 100.0))

    def test_free_admission_with_benefit_is_infinite(self):
        problem = single_node_problem([(5.0, 10, 0.0)], capacity=100.0)
        assert benefit_cost_ratio(problem, "S", "c0", 10.0) == math.inf

    def test_free_admission_without_benefit_is_zero(self):
        problem = single_node_problem([(5.0, 10, 0.0)], capacity=100.0)
        # log(1+0) = 0 at rate 0.
        assert benefit_cost_ratio(problem, "S", "c0", 0.0) == 0.0


class TestGreedyAllocation:
    def test_admits_by_ratio_order(self):
        # Two classes, same cost: the higher scale admits first.
        problem = single_node_problem(
            [(10.0, 5, 10.0), (1.0, 5, 10.0)], capacity=320.0
        )
        result = allocate_consumers(problem, "S", {"f0": 4.0, "f1": 4.0})
        # Budget 320; unit cost 40 -> 8 consumers total; c0 takes its 5 max.
        assert result.populations["c0"] == 5
        assert result.populations["c1"] == 3

    def test_respects_max_consumers(self):
        problem = single_node_problem([(10.0, 2, 1.0)], capacity=1e6)
        result = allocate_consumers(problem, "S", {"f0": 5.0})
        assert result.populations["c0"] == 2

    def test_never_violates_capacity(self):
        problem = single_node_problem(
            [(10.0, 100, 7.0), (3.0, 100, 13.0)], capacity=500.0
        )
        rates = {"f0": 3.0, "f1": 5.0}
        result = allocate_consumers(problem, "S", rates)
        allocation = Allocation(rates=dict(rates), populations=result.populations)
        assert node_usage(problem, allocation, "S") <= 500.0 + 1e-9

    def test_used_matches_node_usage(self):
        problem = single_node_problem(
            [(10.0, 10, 7.0), (3.0, 10, 13.0)], capacity=500.0
        )
        rates = {"f0": 3.0, "f1": 5.0}
        result = allocate_consumers(problem, "S", rates)
        allocation = Allocation(rates=dict(rates), populations=result.populations)
        assert result.used == pytest.approx(node_usage(problem, allocation, "S"))

    def test_flow_cost_alone_can_exceed_capacity(self):
        problem = single_node_problem([(10.0, 5, 1.0)], capacity=50.0)
        # Add an overwhelming flow-node cost by rebuilding with F set.
        costs = CostModelBuilder()
        costs.set_flow_node("S", "f0", 100.0)
        costs.set_consumer("S", "c0", 1.0)
        costs.set_link("P->S", "f0", 1.0)
        problem = problem.with_costs(costs.build())
        result = allocate_consumers(problem, "S", {"f0": 1.0})
        assert result.populations["c0"] == 0
        assert result.used == pytest.approx(100.0)  # > capacity: overload signal

    def test_best_unsatisfied_ratio_reported(self):
        problem = single_node_problem(
            [(10.0, 5, 10.0), (1.0, 5, 10.0)], capacity=320.0
        )
        result = allocate_consumers(problem, "S", {"f0": 4.0, "f1": 4.0})
        # c0 saturated; c1 partially admitted -> BC(b,t) = BC_{c1}.
        assert result.best_unsatisfied_ratio == pytest.approx(result.ratios["c1"])

    def test_best_ratio_zero_when_everyone_admitted(self):
        problem = single_node_problem([(10.0, 2, 1.0)], capacity=1e6)
        result = allocate_consumers(problem, "S", {"f0": 5.0})
        assert result.best_unsatisfied_ratio == 0.0

    def test_free_classes_fully_admitted(self):
        problem = single_node_problem(
            [(10.0, 7, 0.0), (1.0, 5, 10.0)], capacity=100.0
        )
        result = allocate_consumers(problem, "S", {"f0": 4.0, "f1": 4.0})
        assert result.populations["c0"] == 7

    def test_deterministic_tie_break(self):
        problem = single_node_problem(
            [(5.0, 10, 10.0), (5.0, 10, 10.0)], capacity=100.0
        )
        first = allocate_consumers(problem, "S", {"f0": 2.0, "f1": 2.0})
        second = allocate_consumers(problem, "S", {"f0": 2.0, "f1": 2.0})
        assert first.populations == second.populations

    def test_allocate_all_consumers_covers_nodes(self, base_problem):
        rates = {flow_id: 100.0 for flow_id in base_problem.flows}
        results = allocate_all_consumers(base_problem, rates)
        assert set(results) == {"S0", "S1", "S2"}


@settings(max_examples=50)
@given(
    specs=st.lists(
        st.tuples(
            st.floats(min_value=0.5, max_value=100.0),  # scale (rank)
            st.integers(min_value=0, max_value=50),     # max consumers
            st.floats(min_value=0.1, max_value=30.0),   # G
        ),
        min_size=1,
        max_size=5,
    ),
    capacity=st.floats(min_value=10.0, max_value=5000.0),
    rate=st.floats(min_value=0.5, max_value=50.0),
)
def test_greedy_is_feasible_and_greedy_optimal(specs, capacity, rate):
    """Property: the greedy fill is feasible, and no single extra consumer of
    any class fits within the remaining budget (maximality)."""
    problem = single_node_problem(specs, capacity=capacity)
    rates = {f"f{i}": rate for i in range(len(specs))}
    result = allocate_consumers(problem, "S", rates)
    allocation = Allocation(rates=dict(rates), populations=result.populations)
    used = node_usage(problem, allocation, "S")
    assert used <= capacity * (1.0 + 1e-9)
    remaining = capacity - used
    for index, (scale, max_consumers, consumer_cost) in enumerate(specs):
        class_id = f"c{index}"
        if result.populations[class_id] < max_consumers:
            unit = consumer_cost * rate
            # One more consumer of an unsaturated class must not fit.
            assert unit > remaining - 1e-6


@settings(max_examples=30)
@given(
    capacity=st.floats(min_value=100.0, max_value=10000.0),
    rate=st.floats(min_value=0.5, max_value=50.0),
)
def test_greedy_beats_reversed_order(capacity, rate):
    """Property: greedy (by ratio) achieves at least the utility of the
    anti-greedy fill (worst ratio first)."""
    specs = [(20.0, 30, 10.0), (5.0, 30, 10.0), (1.0, 30, 10.0)]
    problem = single_node_problem(specs, capacity=capacity)
    rates = {f"f{i}": rate for i in range(len(specs))}
    result = allocate_consumers(problem, "S", rates)

    # Anti-greedy: fill worst-first.
    order = sorted(result.ratios, key=lambda c: result.ratios[c])
    budget = capacity
    anti = {}
    for class_id in order:
        cls = problem.classes[class_id]
        unit = problem.costs.consumer("S", class_id) * rates[cls.flow_id]
        take = min(cls.max_consumers, int(budget / unit)) if unit > 0 else cls.max_consumers
        take = max(take, 0)
        anti[class_id] = take
        budget -= take * unit

    def utility(populations):
        return sum(
            populations[c] * problem.classes[c].utility.value(rates[problem.classes[c].flow_id])
            for c in populations
        )

    assert utility(result.populations) >= utility(anti) - 1e-9
