"""Unit tests for the problem-lowering layer (:mod:`repro.core.compiled`)."""

import dataclasses

import numpy as np
import pytest

from repro.core.compiled import (
    FAMILY_GENERIC,
    FAMILY_LOG,
    FAMILY_POW,
    compile_problem,
)
from repro.model.allocation import (
    Allocation,
    link_usage,
    node_usage,
    total_utility,
)
from repro.model.problem import Problem, build_problem
from repro.utility.functions import LogUtility, PowerUtility, UtilityFunction
from repro.workloads.base import base_workload
from repro.workloads.micro import micro_workload


def replace_class_utility(
    problem: Problem, class_id: str, utility: UtilityFunction
) -> Problem:
    """Rebuild ``problem`` with one class's utility swapped out."""
    classes = [
        dataclasses.replace(cls, utility=utility) if cid == class_id else cls
        for cid, cls in problem.classes.items()
    ]
    return build_problem(
        nodes=problem.nodes.values(),
        links=problem.links.values(),
        flows=problem.flows.values(),
        classes=classes,
        routes={fid: problem.route(fid) for fid in problem.flows},
        costs=problem.costs,
    )


@pytest.fixture(scope="module")
def compiled_base():
    return compile_problem(base_workload())


class TestVocabularies:
    def test_ids_sorted_and_scoped(self, compiled_base):
        problem = compiled_base.problem
        assert compiled_base.flow_ids == tuple(sorted(problem.flows))
        assert compiled_base.class_ids == tuple(sorted(problem.classes))
        assert compiled_base.node_ids == problem.consumer_nodes()
        assert compiled_base.link_ids == problem.bottleneck_links()

    def test_array_shapes(self, compiled_base):
        c = compiled_base
        assert c.link_cost.shape == (c.n_links, c.n_flows)
        assert c.flow_node_cost.shape == (c.n_nodes, c.n_flows)
        for array in (c.rate_min, c.rate_max, c.flow_family):
            assert array.shape == (c.n_flows,)
        for array in (
            c.consumer_cost,
            c.class_flow,
            c.class_node,
            c.class_cell,
            c.max_consumers,
            c.class_family,
        ):
            assert array.shape == (c.n_classes,)

    def test_family_positions_partition_classes(self, compiled_base):
        c = compiled_base
        merged = np.concatenate(
            (
                c.log_class_positions,
                c.pow_class_positions,
                c.generic_class_positions,
            )
        )
        assert sorted(merged.tolist()) == list(range(c.n_classes))

    def test_incidence_matches_cost_model(self, compiled_base):
        c = compiled_base
        problem = c.problem
        for l, lid in enumerate(c.link_ids):
            for i, fid in enumerate(c.flow_ids):
                expected = (
                    problem.costs.link(lid, fid)
                    if fid in problem.flows_on_link(lid)
                    else 0.0
                )
                assert c.link_cost[l, i] == expected
        for b, nid in enumerate(c.node_ids):
            for i, fid in enumerate(c.flow_ids):
                expected = (
                    problem.costs.flow_node(nid, fid)
                    if fid in problem.flows_at_node(nid)
                    else 0.0
                )
                assert c.flow_node_cost[b, i] == expected
        for j, cid in enumerate(c.class_ids):
            cls = problem.classes[cid]
            assert c.consumer_cost[j] == problem.costs.consumer(cls.node, cid)
            assert c.flow_ids[c.class_flow[j]] == cls.flow_id
            assert c.node_ids[c.class_node[j]] == cls.node
            assert c.max_consumers[j] == cls.max_consumers


class TestConverters:
    def test_rates_round_trip(self, compiled_base):
        c = compiled_base
        rates = {fid: 10.0 + i for i, fid in enumerate(c.flow_ids)}
        assert c.rates_dict(c.rates_vector(rates)) == rates

    def test_rates_default_to_minimum(self, compiled_base):
        c = compiled_base
        assert np.array_equal(c.rates_vector(), c.rate_min)
        assert np.array_equal(c.rates_vector({}), c.rate_min)

    def test_populations_round_trip(self, compiled_base):
        c = compiled_base
        populations = {cid: j % 5 for j, cid in enumerate(c.class_ids)}
        assert c.populations_dict(c.populations_vector(populations)) == (
            populations
        )

    def test_price_vectors_follow_vocabulary_order(self, compiled_base):
        c = compiled_base
        prices = {nid: float(b) for b, nid in enumerate(c.node_ids)}
        assert c.node_prices_vector(prices).tolist() == [
            float(b) for b in range(c.n_nodes)
        ]
        assert c.link_prices_vector({}).tolist() == [0.0] * c.n_links


class TestFamilyClassification:
    def test_base_workload_is_all_log(self, compiled_base):
        c = compiled_base
        assert np.all(c.class_family == FAMILY_LOG)
        assert np.all(c.flow_family == FAMILY_LOG)
        assert c.generic_class_positions.size == 0

    def test_power_workload_is_all_pow(self):
        c = compile_problem(base_workload("pow50"))
        assert np.all(c.class_family == FAMILY_POW)
        assert np.all(c.flow_family == FAMILY_POW)

    def test_mixed_family_flow_falls_back_to_generic(self):
        # Flow "fa" hosts classes ca and cb; turning ca's log utility
        # into a power one leaves fa with mixed member families.
        mixed = replace_class_utility(
            micro_workload(), "ca", PowerUtility(scale=10.0)
        )
        c = compile_problem(mixed)
        assert c.flow_family[c.flow_ids.index("fa")] == FAMILY_GENERIC
        assert c.flow_family[c.flow_ids.index("fb")] == FAMILY_LOG

    def test_log_offset_mismatch_falls_back_to_generic(self):
        # Same family but different offsets: no shared closed form.
        shifted = replace_class_utility(
            micro_workload(), "ca", LogUtility(scale=10.0, offset=7.0)
        )
        c = compile_problem(shifted)
        assert c.flow_family[c.flow_ids.index("fa")] == FAMILY_GENERIC
        assert c.flow_family[c.flow_ids.index("fb")] == FAMILY_LOG


class TestLoweredAccounting:
    def test_usages_and_utility_match_dict_model(self, compiled_base):
        c = compiled_base
        problem = c.problem
        rates = {fid: 0.5 * (c.rate_min[i] + c.rate_max[i])
                 for i, fid in enumerate(c.flow_ids)}
        populations = {cid: int(c.max_consumers[j] // 2)
                       for j, cid in enumerate(c.class_ids)}
        allocation = Allocation(rates=dict(rates), populations=populations)
        r = c.rates_vector(rates)
        n = c.populations_vector(populations)

        link = c.link_usages(r)
        for l, lid in enumerate(c.link_ids):
            assert link[l] == pytest.approx(link_usage(problem, allocation, lid))
        node = c.node_usages(r, n.astype(np.float64))
        for b, nid in enumerate(c.node_ids):
            assert node[b] == pytest.approx(node_usage(problem, allocation, nid))
        assert c.total_utility(r, n) == pytest.approx(
            total_utility(problem, allocation)
        )

    def test_class_values_match_utilities(self, compiled_base):
        c = compiled_base
        r = c.rates_vector(
            {fid: 12.0 + i for i, fid in enumerate(c.flow_ids)}
        )
        values = c.class_values(r)
        for j in range(c.n_classes):
            rate = float(r[c.class_flow[j]])
            assert values[j] == pytest.approx(c.utilities[j].value(rate))
