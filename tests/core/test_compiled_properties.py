"""Property tests: lowered accounting round-trips the dict-based model.

For random generated workloads and random interior states, every
quantity the :class:`~repro.core.compiled.CompiledProblem` computes on
dense arrays must equal the dict-based accounting in
:mod:`repro.model.allocation` / :mod:`repro.core.rate_allocation` — the
single sources of truth for the paper's equations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import compile_problem
from repro.core.rate_allocation import aggregate_flow_price
from repro.model.allocation import (
    Allocation,
    link_usage,
    node_usage,
    total_utility,
)
from repro.workloads.generator import GeneratorConfig, generate_workload

SHAPES = ("log", "pow25", "pow50", "pow75")


def _draw_state(data, problem):
    """Random rates (in bounds), populations (in bounds) and prices."""
    rates = {
        fid: data.draw(
            st.floats(
                min_value=flow.rate_min,
                max_value=flow.rate_max,
                allow_nan=False,
            ),
            label=f"rate:{fid}",
        )
        for fid, flow in problem.flows.items()
    }
    populations = {
        cid: data.draw(
            st.integers(min_value=0, max_value=cls.max_consumers),
            label=f"n:{cid}",
        )
        for cid, cls in problem.classes.items()
    }
    node_prices = {
        nid: data.draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            label=f"p:{nid}",
        )
        for nid in problem.consumer_nodes()
    }
    link_prices = {
        lid: data.draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            label=f"pl:{lid}",
        )
        for lid in problem.bottleneck_links()
    }
    return rates, populations, node_prices, link_prices


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shape=st.sampled_from(SHAPES),
    data=st.data(),
)
def test_lowered_accounting_round_trips(seed, shape, data):
    problem = generate_workload(GeneratorConfig(shape=shape), seed=seed)
    compiled = compile_problem(problem)
    rates, populations, node_prices, link_prices = _draw_state(data, problem)
    allocation = Allocation(rates=dict(rates), populations=dict(populations))

    r = compiled.rates_vector(rates)
    n = compiled.populations_vector(populations)
    nf = n.astype(np.float64)

    # eq. 8-9: per-flow aggregate prices.
    prices = compiled.flow_prices(
        nf,
        compiled.node_prices_vector(node_prices),
        compiled.link_prices_vector(link_prices),
    )
    for i, fid in enumerate(compiled.flow_ids):
        expected = aggregate_flow_price(
            problem, fid, populations, node_prices, link_prices
        )
        assert np.isclose(prices[i], expected, rtol=1e-9, atol=1e-9)

    # eq. 4/5 left-hand sides.
    links = compiled.link_usages(r)
    for l, lid in enumerate(compiled.link_ids):
        assert np.isclose(
            links[l], link_usage(problem, allocation, lid), rtol=1e-9, atol=1e-9
        )
    nodes = compiled.node_usages(r, nf)
    for b, nid in enumerate(compiled.node_ids):
        assert np.isclose(
            nodes[b], node_usage(problem, allocation, nid), rtol=1e-9, atol=1e-9
        )

    # eq. 6: the objective.
    assert np.isclose(
        compiled.total_utility(r, n),
        total_utility(problem, allocation),
        rtol=1e-9,
        atol=1e-9,
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_dict_vector_converters_round_trip(seed, data):
    problem = generate_workload(seed=seed)
    compiled = compile_problem(problem)
    rates, populations, _, _ = _draw_state(data, problem)
    assert compiled.rates_dict(compiled.rates_vector(rates)) == rates
    assert (
        compiled.populations_dict(compiled.populations_vector(populations))
        == populations
    )
