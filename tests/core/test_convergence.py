"""Unit tests for the convergence criterion (section 4.3)."""

import pytest

from repro.core.convergence import (
    ConvergenceCriterion,
    iterations_until_convergence,
    oscillation_amplitude,
)


class TestWindowConverged:
    def test_flat_series_converges(self):
        criterion = ConvergenceCriterion(window=5)
        assert criterion.window_converged([100.0] * 5)

    def test_short_series_never_converges(self):
        criterion = ConvergenceCriterion(window=5)
        assert not criterion.window_converged([100.0] * 4)

    def test_small_relative_amplitude_converges(self):
        criterion = ConvergenceCriterion(window=4, rel_amplitude=1e-3)
        values = [1000.0, 1000.5, 999.9, 1000.2]
        assert criterion.window_converged(values)

    def test_large_amplitude_does_not(self):
        criterion = ConvergenceCriterion(window=4, rel_amplitude=1e-3)
        values = [1000.0, 1100.0, 900.0, 1000.0]
        assert not criterion.window_converged(values)

    def test_only_trailing_window_matters(self):
        criterion = ConvergenceCriterion(window=3)
        values = [0.0, 5000.0, 100.0, 100.0, 100.0]
        assert criterion.window_converged(values)

    def test_zero_mean_edge_case(self):
        criterion = ConvergenceCriterion(window=3)
        assert criterion.window_converged([0.0, 0.0, 0.0])
        assert not criterion.window_converged([-1.0, 0.0, 1.0])


class TestConvergedAt:
    def test_finds_first_stable_window(self):
        criterion = ConvergenceCriterion(window=3, rel_amplitude=0.01)
        values = [0.0, 100.0, 50.0, 100.0, 100.0, 100.0, 100.0]
        # First window [100, 100, 100] ends at index 5.
        assert criterion.converged_at(values) == 5

    def test_never_converges_returns_none(self):
        criterion = ConvergenceCriterion(window=3, rel_amplitude=1e-6)
        values = [float(i % 7) * 100.0 + 1.0 for i in range(30)]
        assert criterion.converged_at(values) is None

    def test_iterations_until_convergence_is_one_based(self):
        values = [0.0, 100.0, 100.0, 100.0]
        assert iterations_until_convergence(values, window=3) == 4

    def test_empty_series(self):
        assert iterations_until_convergence([], window=3) is None


class TestValidation:
    def test_window_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(window=1)

    def test_amplitude_must_be_positive(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(rel_amplitude=0.0)


class TestOscillationAmplitude:
    def test_flat_is_zero(self):
        assert oscillation_amplitude([5.0, 5.0, 5.0]) == 0.0

    def test_relative_to_mean(self):
        assert oscillation_amplitude([90.0, 110.0], window=2) == pytest.approx(0.2)

    def test_requires_values(self):
        with pytest.raises(ValueError):
            oscillation_amplitude([])
