"""Property tests of LRGP invariants on randomized workloads.

For any generated instance, regardless of seed or shape, the optimizer must
preserve the model invariants: feasibility, bound respect, non-negative
prices, and equivalence between the reference driver and the distributed
synchronous runtime.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.baselines.bounds import utility_upper_bound
from repro.core.gamma import AdaptiveGamma
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible
from repro.runtime.synchronous import SynchronousRuntime
from repro.workloads.generator import GeneratorConfig, generate_workload

SHAPES = ("log", "pow25", "pow50", "pow75")


def random_problem(seed: int):
    shape = SHAPES[seed % len(SHAPES)]
    config = GeneratorConfig(
        flows=2 + seed % 4,
        consumer_nodes=2 + seed % 3,
        nodes_per_flow=1 + seed % 2,
        classes_per_flow_node=1 + seed % 3,
        consumer_cost_low=5.0,
        consumer_cost_high=30.0,
        shape=shape,
    )
    return generate_workload(config, seed=seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_lrgp_invariants_on_random_workloads(seed):
    problem = random_problem(seed)
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    optimizer.run(80)
    allocation = optimizer.allocation()

    assert is_feasible(problem, allocation)
    for flow_id, rate in allocation.rates.items():
        flow = problem.flows[flow_id]
        assert flow.rate_min <= rate <= flow.rate_max
    for class_id, population in allocation.populations.items():
        assert 0 <= population <= problem.classes[class_id].max_consumers
    assert all(price >= 0.0 for price in optimizer.node_prices().values())
    assert optimizer.utilities[-1] <= utility_upper_bound(problem) * (1 + 1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_runtime_matches_reference_on_random_workloads(seed):
    problem = random_problem(seed)
    reference = LRGP(problem, LRGPConfig.adaptive())
    reference.run(40)
    runtime = SynchronousRuntime(problem, node_gamma=AdaptiveGamma())
    runtime.run(40)
    assert runtime.utilities == pytest.approx(reference.utilities, rel=1e-12)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_iteration_is_feasible(seed):
    """Not just the final state: LRGP's allocation after *every* iteration
    satisfies the node constraints (the greedy step guarantees it)."""
    problem = random_problem(seed)
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    for _ in range(30):
        optimizer.step()
        assert is_feasible(problem, optimizer.allocation())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
@example(seed=119)  # largest limit cycle seen so far: ~25% tail amplitude
def test_utility_stays_bounded_and_settles(seed):
    """LRGP has no convergence proof (paper §3.5) and some random
    heterogeneous-cost instances do settle into small limit cycles (we
    observed ~6% amplitude at seed 3974 pow50 shape, and ~25% at seed
    119, pinned above); the invariant we hold it to is boundedness: a
    tail oscillation well below the utility scale, never divergence."""
    problem = random_problem(seed)
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    optimizer.run(250)
    tail = optimizer.utilities[-20:]
    mean = sum(tail) / len(tail)
    assert mean > 0.0
    assert (max(tail) - min(tail)) <= 0.30 * mean
