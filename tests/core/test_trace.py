"""Tests for trace capture."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.core.trace import TraceError, trace_to_csv, write_trace
from tests.conftest import make_tiny_problem


@pytest.fixture()
def recorded_optimizer():
    optimizer = LRGP(make_tiny_problem(), LRGPConfig(record_snapshots=True))
    optimizer.run(15)
    return optimizer


class TestTraceToCsv:
    def test_header_and_row_count(self, recorded_optimizer):
        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        assert len(lines) == 16
        header = lines[0].split(",")
        assert header[:2] == ["iteration", "utility"]
        assert "rate:fa" in header
        assert "n:ca" in header
        assert "node_price:S" in header

    def test_values_match_records(self, recorded_optimizer):
        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        header = lines[0].split(",")
        last = lines[-1].split(",")
        record = recorded_optimizer.records[-1]
        assert int(last[0]) == record.iteration
        assert float(last[1]) == pytest.approx(record.utility)
        rate_index = header.index("rate:fa")
        assert float(last[rate_index]) == pytest.approx(record.rates["fa"])

    def test_requires_snapshots(self):
        optimizer = LRGP(make_tiny_problem())  # snapshots off
        optimizer.run(3)
        with pytest.raises(TraceError, match="record_snapshots"):
            trace_to_csv(optimizer.records)

    def test_empty_records_rejected(self):
        with pytest.raises(TraceError, match="no iteration records"):
            trace_to_csv([])

    def test_entities_joining_midway_render_empty_cells(self):
        """A flow that leaves mid-run leaves empty cells, not errors."""
        from repro.workloads.base import base_workload

        optimizer = LRGP(base_workload(), LRGPConfig(record_snapshots=True))
        optimizer.run(5)
        optimizer.remove_flow("f5")
        optimizer.run(5)
        csv = trace_to_csv(optimizer.records)
        lines = csv.splitlines()
        header = lines[0].split(",")
        f5_index = header.index("rate:f5")
        assert lines[1].split(",")[f5_index] != ""   # present early
        assert lines[-1].split(",")[f5_index] == ""  # gone later


class TestWriteTrace:
    def test_writes_file(self, recorded_optimizer, tmp_path):
        path = write_trace(recorded_optimizer, tmp_path / "trace.csv")
        assert path.exists()
        assert path.read_text().startswith("iteration,utility")
