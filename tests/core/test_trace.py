"""Tests for trace capture."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.core.trace import (
    TraceError,
    record_to_event,
    trace_columns,
    trace_to_csv,
    write_trace,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def recorded_optimizer():
    optimizer = LRGP(make_tiny_problem(), LRGPConfig(record_snapshots=True))
    optimizer.run(15)
    return optimizer


class TestTraceToCsv:
    def test_header_and_row_count(self, recorded_optimizer):
        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        assert len(lines) == 16
        header = lines[0].split(",")
        assert header[:2] == ["iteration", "utility"]
        assert "rate:fa" in header
        assert "n:ca" in header
        assert "node_price:S" in header

    def test_values_match_records(self, recorded_optimizer):
        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        header = lines[0].split(",")
        last = lines[-1].split(",")
        record = recorded_optimizer.records[-1]
        assert int(last[0]) == record.iteration
        assert float(last[1]) == pytest.approx(record.utility)
        rate_index = header.index("rate:fa")
        assert float(last[rate_index]) == pytest.approx(record.rates["fa"])

    def test_documented_column_group_order(self, recorded_optimizer):
        """Columns follow the documented grouping, each group sorted."""
        header = trace_columns(recorded_optimizer.records)
        prefixes = ["iteration", "utility", "rate:", "n:", "node_price:", "gamma:", "slack:"]
        positions = []
        for prefix in prefixes:
            matching = [i for i, col in enumerate(header) if col.startswith(prefix)]
            assert matching, f"no column for group {prefix!r}"
            assert matching == sorted(matching)
            positions.append(matching[0])
        assert positions == sorted(positions)  # groups appear in order

    def test_gamma_and_slack_columns_carry_values(self, recorded_optimizer):
        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        header = lines[0].split(",")
        last = lines[-1].split(",")
        record = recorded_optimizer.records[-1]
        gamma_index = header.index("gamma:S")
        assert float(last[gamma_index]) == pytest.approx(record.node_gammas["S"])
        slack_index = header.index("slack:node:S")
        assert float(last[slack_index]) == pytest.approx(record.slack["node:S"])

    def test_unified_cell_formatting(self, recorded_optimizer):
        """Floats render as repr, ints bare — the obs format_cell rule."""
        from repro.obs.sinks import format_cell

        csv = trace_to_csv(recorded_optimizer.records)
        lines = csv.splitlines()
        record = recorded_optimizer.records[0]
        first = lines[1].split(",")
        assert first[0] == format_cell(record.iteration)
        assert first[1] == format_cell(record.utility)

    def test_requires_snapshots(self):
        optimizer = LRGP(make_tiny_problem())  # snapshots off
        optimizer.run(3)
        with pytest.raises(TraceError, match="record_snapshots"):
            trace_to_csv(optimizer.records)

    def test_empty_records_rejected(self):
        with pytest.raises(TraceError, match="no iteration records"):
            trace_to_csv([])

    def test_entities_joining_midway_render_empty_cells(self):
        """A flow that leaves mid-run leaves empty cells, not errors."""
        from repro.workloads.base import base_workload

        optimizer = LRGP(base_workload(), LRGPConfig(record_snapshots=True))
        optimizer.run(5)
        optimizer.remove_flow("f5")
        optimizer.run(5)
        csv = trace_to_csv(optimizer.records)
        lines = csv.splitlines()
        header = lines[0].split(",")
        f5_index = header.index("rate:f5")
        assert lines[1].split(",")[f5_index] != ""   # present early
        assert lines[-1].split(",")[f5_index] == ""  # gone later


class TestRecordToEvent:
    def test_snapshot_record_maps_onto_iteration_event(self, recorded_optimizer):
        record = recorded_optimizer.records[-1]
        event = record_to_event(record, t_ns=42)
        assert event.kind == "iteration"
        assert event.iteration == record.iteration
        assert event.utility == record.utility
        assert event.t_ns == 42
        assert event.rates == record.rates
        assert event.gammas == record.node_gammas
        assert event.slack == record.slack

    def test_light_record_rejected(self):
        optimizer = LRGP(make_tiny_problem())  # snapshots off
        optimizer.run(1)
        with pytest.raises(TraceError, match="record_snapshots"):
            record_to_event(optimizer.records[0])


class TestWriteTrace:
    def test_writes_file(self, recorded_optimizer, tmp_path):
        path = write_trace(recorded_optimizer, tmp_path / "trace.csv")
        assert path.exists()
        assert path.read_text().startswith("iteration,utility")
