"""Regression tests: the convergence criterion has exactly one definition.

The paper's 0.1%-amplitude window rule is implemented twice — by the
optimizer-side detector (:mod:`repro.core.convergence`) and by the
event-stream diagnostics (:mod:`repro.obs.diagnostics`).  Their
parameters used to be duplicated literals; both now alias
:mod:`repro.utility.stability`, and the driver and the offline detectors
must agree on the resulting iteration counts.
"""

from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.obs import ConvergenceDiagnostics, MemorySink, Telemetry
from repro.utility.stability import (
    CONVERGENCE_REL_AMPLITUDE,
    CONVERGENCE_WINDOW,
)
from repro.workloads.micro import micro_workload


def test_core_and_obs_share_the_stability_constants():
    from repro.core import convergence
    from repro.obs import diagnostics

    assert convergence.DEFAULT_WINDOW == CONVERGENCE_WINDOW
    assert convergence.DEFAULT_REL_AMPLITUDE == CONVERGENCE_REL_AMPLITUDE
    assert diagnostics.DEFAULT_WINDOW == CONVERGENCE_WINDOW
    assert diagnostics.DEFAULT_REL_AMPLITUDE == CONVERGENCE_REL_AMPLITUDE


def test_driver_and_offline_detector_agree():
    """run_until_converged == iterations_until_convergence on one run."""
    live = LRGP(micro_workload())
    stopped_at = live.run_until_converged(max_iterations=300)
    assert stopped_at is not None

    replay = LRGP(micro_workload())
    replay.run(300)
    assert iterations_until_convergence(replay.utilities) == stopped_at


def test_diagnostics_agree_with_optimizer_detector():
    """The event-stream analyzer reports the same stability iteration."""
    telemetry = Telemetry()
    optimizer = LRGP(micro_workload(), LRGPConfig(telemetry=telemetry))
    optimizer.run(150)

    sink = telemetry.sink
    assert isinstance(sink, MemorySink)
    report = ConvergenceDiagnostics().analyze(sink.events)
    assert report.iterations_to_tolerance == iterations_until_convergence(
        optimizer.utilities
    )
    assert report.iterations_to_tolerance == optimizer.convergence_iteration()
