"""Unit tests for the two-stage approximation with path pruning (§2.4)."""



from repro.core.two_stage import compute_prune_set, two_stage_optimize
from repro.model.allocation import Allocation
from repro.model.costs import CostModelBuilder
from repro.model.entities import ConsumerClass, Flow, Link, Node, Route
from repro.model.problem import build_problem
from repro.utility.functions import LogUtility


def chain_problem():
    """P -> A -> B: a flow relayed through A to a class at B, plus a class
    at A.  Lets us test leaf pruning and relay protection."""
    nodes = [Node("P"), Node("A", capacity=1000.0), Node("B", capacity=1000.0)]
    links = [Link("P->A", tail="P", head="A"), Link("A->B", tail="A", head="B")]
    flow = Flow("f", source="P", rate_min=1.0, rate_max=10.0)
    classes = [
        ConsumerClass("ca", "f", "A", max_consumers=5, utility=LogUtility(scale=10.0)),
        ConsumerClass("cb", "f", "B", max_consumers=5, utility=LogUtility(scale=1.0)),
    ]
    routes = {"f": Route(nodes=("P", "A", "B"), links=("P->A", "A->B"))}
    costs = (
        CostModelBuilder()
        .set_flow_node("A", "f", 2.0)
        .set_flow_node("B", "f", 2.0)
        .set_consumer("A", "ca", 5.0)
        .set_consumer("B", "cb", 5.0)
        .set_link("P->A", "f", 1.0)
        .set_link("A->B", "f", 1.0)
        .build()
    )
    return build_problem(nodes, links, [flow], classes, routes, costs)


class TestComputePruneSet:
    def test_nothing_pruned_when_all_admitted(self):
        problem = chain_problem()
        allocation = Allocation(rates={"f": 5.0}, populations={"ca": 1, "cb": 1})
        prune = compute_prune_set(problem, allocation)
        assert prune.is_empty()

    def test_leaf_with_no_admissions_pruned(self):
        problem = chain_problem()
        allocation = Allocation(rates={"f": 5.0}, populations={"ca": 1, "cb": 0})
        prune = compute_prune_set(problem, allocation)
        assert ("B", "f") in prune.flow_nodes
        assert ("A->B", "f") in prune.flow_links
        # A still has an admitted class: not pruned.
        assert ("A", "f") not in prune.flow_nodes

    def test_relay_node_pruned_only_with_its_subtree(self):
        """If nobody is admitted anywhere, the whole chain collapses (but
        never the source)."""
        problem = chain_problem()
        allocation = Allocation(rates={"f": 5.0}, populations={"ca": 0, "cb": 0})
        prune = compute_prune_set(problem, allocation)
        assert ("B", "f") in prune.flow_nodes
        assert ("A", "f") in prune.flow_nodes
        assert ("P", "f") not in prune.flow_nodes
        assert {("P->A", "f"), ("A->B", "f")} <= prune.flow_links

    def test_relay_with_downstream_admissions_not_pruned(self):
        problem = chain_problem()
        allocation = Allocation(rates={"f": 5.0}, populations={"ca": 0, "cb": 1})
        prune = compute_prune_set(problem, allocation)
        # A has no admitted class but still relays to B.
        assert ("A", "f") not in prune.flow_nodes
        assert prune.flow_links == frozenset()

    def test_prune_set_is_hash_seed_independent(self):
        # Regression for an R11 finding: the per-flow pruned_nodes /
        # pruned_links working sets were iterated unsorted when folded
        # into the result.  The fold targets are sets too, so no output
        # difference was observable — but the determinism contract
        # (docs/analysis.md) demands the fold order be defined anyway, so
        # any future ordered consumer (trace events, logs) stays
        # hash-seed-independent.  Prove the whole computation is: run it
        # in fresh interpreters under two hash seeds and compare.
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "import json, sys\n"
            "from tests.core.test_two_stage import chain_problem\n"
            "from repro.core.two_stage import compute_prune_set\n"
            "from repro.model.allocation import Allocation\n"
            "problem = chain_problem()\n"
            "allocation = Allocation(rates={'f': 5.0},"
            " populations={'ca': 0, 'cb': 0})\n"
            "prune = compute_prune_set(problem, allocation)\n"
            "json.dump({'nodes': sorted(map(list, prune.flow_nodes)),"
            " 'links': sorted(map(list, prune.flow_links))}, sys.stdout)\n"
        )
        repo_root = Path(__file__).resolve().parents[2]
        outputs = {}
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                [str(repo_root / "src"), str(repo_root)]
            )
            completed = subprocess.run(
                [sys.executable, "-c", script],
                env=env, cwd=repo_root, capture_output=True, text=True,
                timeout=60,
            )
            assert completed.returncode == 0, completed.stderr
            outputs[seed] = completed.stdout
        assert outputs["0"] == outputs["1"]
        assert json.loads(outputs["0"])["nodes"]  # something was pruned


class TestTwoStageOptimize:
    def test_no_pruning_returns_stage1(self, tiny_problem):
        result = two_stage_optimize(tiny_problem, iterations=150)
        if result.prune_set.is_empty():
            assert result.stage2_utility == result.stage1_utility
            assert result.improvement == 0.0

    def test_pruning_releases_capacity(self):
        """A starved node whose class is never admitted gets its flow-node
        cost pruned; stage 2 must not be worse than stage 1."""
        problem = chain_problem()
        result = two_stage_optimize(problem, iterations=200)
        assert result.stage2_utility >= result.stage1_utility - 1e-6

    def test_base_workload_improvement_nonnegative(self, base_problem):
        result = two_stage_optimize(base_problem, iterations=120)
        assert result.stage2_utility >= result.stage1_utility * 0.999

    def test_pruned_problem_keeps_structure(self, base_problem):
        result = two_stage_optimize(base_problem, iterations=120)
        assert set(result.pruned_problem.flows) == set(base_problem.flows)
        assert set(result.pruned_problem.classes) == set(base_problem.classes)
