"""Unit tests for Algorithm 1: Lagrangian rate allocation."""

import pytest

from repro.core.rate_allocation import (
    aggregate_flow_price,
    allocate_all_rates,
    allocate_rate,
    link_path_price,
    node_path_price,
)
from tests.conftest import make_tiny_problem


@pytest.fixture()
def problem():
    return make_tiny_problem()


class TestPathPrices:
    def test_link_path_price(self, problem):
        # PL = L * p_l, with L = 1 on the single link.
        assert link_path_price(problem, "fa", {"P->S": 0.7}) == pytest.approx(0.7)

    def test_link_path_price_missing_price_is_zero(self, problem):
        assert link_path_price(problem, "fa", {}) == 0.0

    def test_node_path_price_weights_by_footprint(self, problem):
        # PB = (F + G*n_ca + G*n_cb) * p_S  for flow fa (classes ca, cb at S).
        populations = {"ca": 2, "cb": 3, "cc": 5}
        price = node_path_price(problem, "fa", populations, {"S": 0.1})
        assert price == pytest.approx((1.0 + 10.0 * 2 + 10.0 * 3) * 0.1)

    def test_node_path_price_ignores_other_flows_classes(self, problem):
        populations = {"ca": 0, "cb": 0, "cc": 5}
        price = node_path_price(problem, "fb", populations, {"S": 1.0})
        assert price == pytest.approx(1.0 + 10.0 * 5)

    def test_zero_price_nodes_skipped(self, problem):
        assert node_path_price(problem, "fa", {"ca": 2}, {"S": 0.0}) == 0.0

    def test_aggregate_combines_both(self, problem):
        populations = {"ca": 1, "cb": 0, "cc": 0}
        total = aggregate_flow_price(
            problem, "fa", populations, {"S": 0.5}, {"P->S": 0.25}
        )
        assert total == pytest.approx((1.0 + 10.0) * 0.5 + 0.25)


class TestAllocateRate:
    def test_zero_price_maxes_rate(self, problem):
        rate = allocate_rate(problem, "fa", {"ca": 1, "cb": 1}, price=0.0)
        assert rate == problem.flows["fa"].rate_max

    def test_no_consumers_positive_price_mins_rate(self, problem):
        rate = allocate_rate(problem, "fa", {"ca": 0, "cb": 0}, price=1.0)
        assert rate == problem.flows["fa"].rate_min

    def test_interior_stationary_point(self, problem):
        # d/dr [n*10*log(1+r)] = 10n/(1+r); with n=2 and price=4: r = 20/4-1.
        rate = allocate_rate(problem, "fa", {"ca": 2, "cb": 0}, price=4.0)
        assert rate == pytest.approx(4.0)

    def test_aggregates_multiple_classes(self, problem):
        # ca: scale 10, cb: scale 2; combined slope (10*1 + 2*3)/(1+r).
        rate = allocate_rate(problem, "fa", {"ca": 1, "cb": 3}, price=1.0)
        assert rate == pytest.approx(15.0)

    def test_allocate_all_rates_covers_all_flows(self, problem):
        rates = allocate_all_rates(
            problem, {"ca": 1, "cb": 0, "cc": 1}, {"S": 0.01}, {}
        )
        assert set(rates) == {"fa", "fb"}
        for flow_id, rate in rates.items():
            flow = problem.flows[flow_id]
            assert flow.rate_min <= rate <= flow.rate_max

    def test_higher_price_lower_rate(self, problem):
        populations = {"ca": 3, "cb": 1, "cc": 0}
        low = allocate_rate(problem, "fa", populations, price=0.5)
        high = allocate_rate(problem, "fa", populations, price=5.0)
        assert high <= low

    def test_more_consumers_higher_rate(self, problem):
        few = allocate_rate(problem, "fa", {"ca": 1, "cb": 0}, price=5.0)
        many = allocate_rate(problem, "fa", {"ca": 4, "cb": 0}, price=5.0)
        assert many >= few
