"""Unit tests for node (eq. 12) and link (eq. 13) price controllers."""

import math

import pytest

from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.core.prices import LinkPriceController, NodePriceController


class TestNodePriceController:
    def test_tracks_benefit_cost_when_under_capacity(self):
        controller = NodePriceController(100.0, FixedGamma(0.5), initial_price=0.0)
        price = controller.update(benefit_cost=2.0, used=50.0)
        assert price == pytest.approx(1.0)  # 0 + 0.5 * (2 - 0)
        price = controller.update(benefit_cost=2.0, used=50.0)
        assert price == pytest.approx(1.5)  # 1 + 0.5 * (2 - 1)

    def test_converges_to_benefit_cost(self):
        controller = NodePriceController(100.0, FixedGamma(0.3))
        for _ in range(100):
            controller.update(benefit_cost=7.0, used=10.0)
        assert controller.price == pytest.approx(7.0, rel=1e-6)

    def test_violation_branch_raises_price(self):
        controller = NodePriceController(100.0, FixedGamma(0.1), initial_price=1.0)
        price = controller.update(benefit_cost=0.0, used=150.0)
        assert price == pytest.approx(1.0 + 0.1 * 50.0)

    def test_gamma_one_jumps_straight_to_bc(self):
        controller = NodePriceController(100.0, FixedGamma(1.0), initial_price=9.0)
        assert controller.update(benefit_cost=2.5, used=10.0) == pytest.approx(2.5)

    def test_price_never_negative(self):
        controller = NodePriceController(100.0, FixedGamma(2.0), initial_price=0.5)
        # Overshooting toward a lower BC with gamma > 1 would go negative.
        price = controller.update(benefit_cost=0.0, used=10.0)
        assert price >= 0.0

    def test_zero_bc_decays_price(self):
        """The boundary case of section 3.3: all classes fully admitted."""
        controller = NodePriceController(100.0, FixedGamma(0.5), initial_price=4.0)
        controller.update(benefit_cost=0.0, used=10.0)
        assert controller.price == pytest.approx(2.0)

    def test_separate_gamma_for_violation_branch(self):
        controller = NodePriceController(
            100.0, gamma_under=FixedGamma(0.5), gamma_over=FixedGamma(0.001)
        )
        price = controller.update(benefit_cost=0.0, used=200.0)
        assert price == pytest.approx(0.1)

    def test_adaptive_gamma_observes_deltas(self):
        gamma = AdaptiveGamma(initial=0.05)
        controller = NodePriceController(100.0, gamma)
        controller.update(benefit_cost=1.0, used=10.0)  # price up
        controller.update(benefit_cost=0.0, used=10.0)  # price down -> halve
        assert gamma.value() < 0.05

    def test_rejects_invalid_inputs(self):
        controller = NodePriceController(100.0, FixedGamma(0.1))
        with pytest.raises(ValueError):
            controller.update(benefit_cost=-1.0, used=10.0)
        with pytest.raises(ValueError):
            controller.update(benefit_cost=1.0, used=-10.0)
        with pytest.raises(ValueError):
            controller.update(benefit_cost=float("nan"), used=10.0)

    def test_rejects_invalid_construction(self):
        with pytest.raises(ValueError):
            NodePriceController(0.0, FixedGamma(0.1))
        with pytest.raises(ValueError):
            NodePriceController(10.0, FixedGamma(0.1), initial_price=-1.0)

    def test_reset(self):
        controller = NodePriceController(100.0, FixedGamma(0.1), initial_price=5.0)
        controller.reset()
        assert controller.price == 0.0
        with pytest.raises(ValueError):
            controller.reset(-1.0)


class TestLinkPriceController:
    def test_gradient_projection_up_and_down(self):
        controller = LinkPriceController(100.0, gamma=0.01, initial_price=1.0)
        assert controller.update(usage=150.0) == pytest.approx(1.5)
        assert controller.update(usage=50.0) == pytest.approx(1.0)

    def test_projection_onto_nonnegative(self):
        controller = LinkPriceController(100.0, gamma=0.01, initial_price=0.1)
        assert controller.update(usage=0.0) == 0.0

    def test_price_zero_at_equilibrium_when_uncongested(self):
        controller = LinkPriceController(100.0, gamma=0.05)
        for _ in range(20):
            controller.update(usage=60.0)
        assert controller.price == 0.0

    def test_price_grows_while_congested(self):
        controller = LinkPriceController(100.0, gamma=0.05)
        previous = controller.price
        for _ in range(5):
            current = controller.update(usage=130.0)
            assert current > previous
            previous = current

    def test_infinite_capacity_is_always_free(self):
        controller = LinkPriceController(math.inf, gamma=0.05, initial_price=3.0)
        assert controller.price == 0.0
        assert controller.update(usage=1e12) == 0.0

    def test_accepts_schedule_or_float(self):
        assert LinkPriceController(10.0, gamma=0.5).update(12.0) == pytest.approx(1.0)
        assert LinkPriceController(10.0, gamma=FixedGamma(0.5)).update(
            12.0
        ) == pytest.approx(1.0)

    def test_rejects_invalid_inputs(self):
        controller = LinkPriceController(10.0)
        with pytest.raises(ValueError):
            controller.update(-1.0)
        with pytest.raises(ValueError):
            LinkPriceController(0.0)
        with pytest.raises(ValueError):
            LinkPriceController(10.0, initial_price=-0.5)


class TestNonFiniteInputHardening:
    """NaN compares false against everything, so it slips past plain sign
    guards (``nan < 0`` is False); these inputs must raise instead of
    silently poisoning the price trajectory."""

    def test_nan_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodePriceController(math.nan, FixedGamma(0.1))
        with pytest.raises(ValueError):
            LinkPriceController(math.nan)

    def test_nan_and_inf_initial_price_rejected(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                NodePriceController(100.0, FixedGamma(0.1), initial_price=bad)
            with pytest.raises(ValueError):
                LinkPriceController(100.0, initial_price=bad)

    def test_infinite_capacity_link_still_validates_initial_price(self):
        # Even though the stored price is forced to zero, a bogus initial
        # price is a caller error and must not be masked by inf capacity.
        with pytest.raises(ValueError):
            LinkPriceController(math.inf, initial_price=-0.5)
        with pytest.raises(ValueError):
            LinkPriceController(math.inf, initial_price=math.nan)

    def test_node_update_rejects_nonfinite_inputs(self):
        controller = NodePriceController(100.0, FixedGamma(0.1))
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                controller.update(benefit_cost=bad, used=10.0)
            with pytest.raises(ValueError):
                controller.update(benefit_cost=1.0, used=bad)
        assert controller.price == 0.0  # rejected inputs leave state intact

    def test_link_update_rejects_nonfinite_usage(self):
        controller = LinkPriceController(100.0)
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                controller.update(bad)
        assert controller.price == 0.0

    def test_reset_validates_price(self):
        node = NodePriceController(100.0, FixedGamma(0.1))
        link = LinkPriceController(100.0)
        for controller in (node, link):
            with pytest.raises(ValueError):
                controller.reset(math.nan)
            with pytest.raises(ValueError):
                controller.reset(-1.0)
