"""Engine registry + reference/vectorized trajectory equivalence.

The acceptance bar for any alternative engine: on every supported
workload its utility trajectory must match the reference driver's at
*every* iteration within
:data:`repro.utility.tolerance.ENGINE_EQUIVALENCE_RTOL`, and the final
allocation must agree (populations exactly — they are integers).
"""

import math

import pytest

from repro.core.consumer_allocation import allocate_consumers
from repro.core.engines import (
    _ENGINES,
    LRGPEngine,
    ReferenceEngine,
    available_engines,
    create_engine,
    register_engine,
)
from repro.core.gamma import AdaptiveGamma, FixedGamma
from repro.core.lrgp import LRGP, LRGPConfig
from repro.utility.tolerance import ENGINE_EQUIVALENCE_RTOL
from repro.workloads.base import base_workload
from repro.workloads.bottleneck import link_bottleneck_workload
from repro.workloads.micro import micro_workload
from repro.workloads.scaling import scale_flows

#: The equivalence matrix: every workload family the paper evaluates.
EQUIVALENCE_WORKLOADS = {
    "micro": micro_workload,
    "base": base_workload,
    "link-bottleneck": lambda: link_bottleneck_workload(200000.0),
    "flows-x4": lambda: scale_flows(4),
}


def assert_trajectories_match(reference: LRGP, candidate: LRGP) -> None:
    assert len(reference.utilities) == len(candidate.utilities)
    for i, (expected, actual) in enumerate(
        zip(reference.utilities, candidate.utilities)
    ):
        assert actual == pytest.approx(
            expected, rel=ENGINE_EQUIVALENCE_RTOL, abs=ENGINE_EQUIVALENCE_RTOL
        ), f"utility diverged at iteration {i + 1}"


class TestRegistry:
    def test_builtin_engines_listed(self):
        names = available_engines()
        assert "reference" in names
        assert "vectorized" in names
        assert names == tuple(sorted(names))

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ValueError, match="reference"):
            create_engine("turbo", micro_workload(), LRGPConfig())

    def test_create_reference(self):
        engine = create_engine("reference", micro_workload(), LRGPConfig())
        assert isinstance(engine, ReferenceEngine)
        assert engine.name == "reference"

    def test_register_engine_round_trip(self):
        class Dummy(ReferenceEngine):
            name = "dummy"

        register_engine("dummy", Dummy)
        try:
            assert "dummy" in available_engines()
            optimizer = LRGP(micro_workload(), engine="dummy")
            assert optimizer.engine_name == "dummy"
        finally:
            del _ENGINES["dummy"]

    def test_config_engine_field_and_override(self):
        problem = micro_workload()
        assert LRGP(problem).engine_name == "reference"
        assert (
            LRGP(problem, LRGPConfig(engine="vectorized")).engine_name
            == "vectorized"
        )
        assert (
            LRGP(
                problem, LRGPConfig(engine="vectorized"), engine="reference"
            ).engine_name
            == "reference"
        )


class TestVectorizedGating:
    def test_custom_admission_rejected(self):
        def admission(problem, node_id, rates):  # pragma: no cover - stub
            return allocate_consumers(problem, node_id, rates)

        config = LRGPConfig(admission=admission)
        with pytest.raises(ValueError, match="admission"):
            LRGP(micro_workload(), config, engine="vectorized")

    def test_unknown_gamma_schedule_rejected(self):
        class ExoticGamma(FixedGamma):
            pass

        config = LRGPConfig(node_gamma=ExoticGamma(0.05))
        with pytest.raises(ValueError, match="schedules only"):
            LRGP(micro_workload(), config, engine="vectorized")


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_WORKLOADS))
    def test_adaptive_gamma_250_iterations(self, name):
        make = EQUIVALENCE_WORKLOADS[name]
        reference = LRGP(make(), engine="reference")
        vectorized = LRGP(make(), engine="vectorized")
        reference.run(250)
        vectorized.run(250)
        assert_trajectories_match(reference, vectorized)
        assert vectorized.allocation().populations == (
            reference.allocation().populations
        )
        for flow_id, rate in reference.allocation().rates.items():
            assert vectorized.allocation().rates[flow_id] == pytest.approx(
                rate, rel=ENGINE_EQUIVALENCE_RTOL, abs=1e-9
            )

    def test_fixed_gamma(self):
        config = LRGPConfig.fixed(0.05)
        reference = LRGP(micro_workload(), config, engine="reference")
        vectorized = LRGP(micro_workload(), config, engine="vectorized")
        reference.run(120)
        vectorized.run(120)
        assert_trajectories_match(reference, vectorized)

    def test_snapshots_match(self):
        config = LRGPConfig(record_snapshots=True)
        reference = LRGP(micro_workload(), config, engine="reference")
        vectorized = LRGP(micro_workload(), config, engine="vectorized")
        reference.run(60)
        vectorized.run(60)
        for ref, vec in zip(reference.records, vectorized.records):
            assert vec.populations == ref.populations
            assert vec.node_gammas == pytest.approx(ref.node_gammas)
            for mapping in ("rates", "node_prices", "link_prices", "slack"):
                expected = getattr(ref, mapping)
                actual = getattr(vec, mapping)
                assert set(actual) == set(expected)
                for key, value in expected.items():
                    if math.isinf(value):
                        assert math.isinf(actual[key])
                    else:
                        assert actual[key] == pytest.approx(
                            value, rel=ENGINE_EQUIVALENCE_RTOL, abs=1e-9
                        )

    def test_reconfiguration_preserves_equivalence(self):
        """Figure 3 dynamics: drop a flow mid-run, keep matching."""
        reference = LRGP(base_workload(), engine="reference")
        vectorized = LRGP(base_workload(), engine="vectorized")
        reference.run(100)
        vectorized.run(100)
        reference.remove_flow("f5")
        vectorized.remove_flow("f5")
        reference.run(100)
        vectorized.run(100)
        assert_trajectories_match(reference, vectorized)

    def test_capacity_change_preserves_link_state(self):
        problem = link_bottleneck_workload(200000.0)
        reference = LRGP(problem, engine="reference")
        vectorized = LRGP(problem, engine="vectorized")
        reference.run(80)
        vectorized.run(80)
        tightened = problem.with_node_capacity("S0", 80000.0)
        reference.set_problem(tightened)
        vectorized.set_problem(tightened)
        reference.run(80)
        vectorized.run(80)
        assert_trajectories_match(reference, vectorized)


class TestLayoutEquivalence:
    """The sparse lowering is a layout, never a semantics change.

    Both pinned layouts must match the reference trajectory on every
    equivalence workload within the same 1e-9 bar the auto engine meets,
    and match *each other's* integer populations exactly.
    """

    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_WORKLOADS))
    @pytest.mark.parametrize("engine", ["vectorized-dense", "vectorized-sparse"])
    def test_layouts_match_reference(self, name, engine):
        make = EQUIVALENCE_WORKLOADS[name]
        reference = LRGP(make(), engine="reference")
        candidate = LRGP(make(), engine=engine)
        reference.run(250)
        candidate.run(250)
        assert_trajectories_match(reference, candidate)
        assert candidate.allocation().populations == (
            reference.allocation().populations
        )
        for flow_id, rate in reference.allocation().rates.items():
            assert candidate.allocation().rates[flow_id] == pytest.approx(
                rate, rel=ENGINE_EQUIVALENCE_RTOL, abs=1e-9
            )

    def test_layout_engines_registered(self):
        names = available_engines()
        assert "vectorized-dense" in names
        assert "vectorized-sparse" in names

    def test_layout_engines_report_their_name(self):
        problem = micro_workload()
        assert (
            LRGP(problem, engine="vectorized-sparse").engine_name
            == "vectorized-sparse"
        )
        assert (
            LRGP(problem, engine="vectorized-dense").engine_name
            == "vectorized-dense"
        )

    def test_forced_sparse_layout_runs_sparse(self):
        from repro.core.compiled import VectorizedEngine

        engine = VectorizedEngine(micro_workload(), LRGPConfig(), layout="sparse")
        assert engine.sparse
        assert not engine.compiled.dense_materialized()
        engine.step()
        assert not engine.compiled.dense_materialized()

    def test_auto_layout_is_dense_below_crossover(self):
        from repro.core.compiled import SPARSE_MIN_FLOWS, VectorizedEngine

        problem = micro_workload()
        engine = VectorizedEngine(problem, LRGPConfig())
        assert len(problem.flows) < SPARSE_MIN_FLOWS
        assert not engine.sparse

    def test_unknown_layout_rejected(self):
        from repro.core.compiled import VectorizedEngine

        with pytest.raises(ValueError, match="layout"):
            VectorizedEngine(micro_workload(), LRGPConfig(), layout="csr")


class TestEngineProtocol:
    def test_reference_engine_is_lrgp_engine(self):
        engine = create_engine("reference", micro_workload(), LRGPConfig())
        assert isinstance(engine, LRGPEngine)

    def test_vectorized_engine_is_lrgp_engine(self):
        engine = create_engine("vectorized", micro_workload(), LRGPConfig())
        assert isinstance(engine, LRGPEngine)
        assert engine.name == "vectorized"

    def test_adaptive_gamma_prototype_not_shared(self):
        """Each node adapts independently in both engines."""
        config = LRGPConfig(node_gamma=AdaptiveGamma())
        optimizer = LRGP(base_workload(), config, engine="vectorized")
        optimizer.run(120)
        gammas = set(optimizer.node_gammas().values())
        assert len(gammas) > 1
