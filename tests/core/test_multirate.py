"""Tests for the multirate extension (the paper's deferred future work)."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.core.multirate import (
    MultirateLRGP,
    multirate_node_usage,
    multirate_total_utility,
)
from repro.workloads.base import base_workload


@pytest.fixture(scope="module")
def base_runs():
    problem = base_workload()
    single = LRGP(problem, LRGPConfig.adaptive())
    single.run(200)
    multi = MultirateLRGP(problem)
    multi.run(200)
    return problem, single, multi


class TestDominance:
    def test_multirate_at_least_single_rate_on_base(self, base_runs):
        """Every single-rate allocation is multirate-feasible, so the
        multirate optimizer must not do worse (both are heuristics, allow
        0.5% slack)."""
        _, single, multi = base_runs
        assert multi.utilities[-1] >= single.utilities[-1] * 0.995

    def test_multirate_strictly_better_under_heterogeneous_capacity(self):
        """When one node is capacity-starved, thinning at that node (rather
        than slowing the whole flow) must win clearly."""
        problem = base_workload().with_node_capacity("S1", 9e4)
        single = LRGP(problem, LRGPConfig.adaptive())
        single.run(250)
        multi = MultirateLRGP(problem)
        multi.run(250)
        assert multi.utilities[-1] > 1.02 * single.utilities[-1]


class TestFeasibility:
    def test_node_constraints_hold_at_local_rates(self, base_runs):
        problem, _, multi = base_runs
        allocation = multi.allocation()
        for node_id in problem.consumer_nodes():
            usage = multirate_node_usage(problem, allocation, node_id)
            assert usage <= problem.nodes[node_id].capacity * (1 + 1e-9)

    def test_local_rates_never_exceed_source_rate(self, base_runs):
        problem, _, multi = base_runs
        allocation = multi.allocation()
        for (node_id, flow_id), local in allocation.local_rates.items():
            assert local <= allocation.source_rates[flow_id] + 1e-9

    def test_rates_within_flow_bounds(self, base_runs):
        problem, _, multi = base_runs
        allocation = multi.allocation()
        for flow_id, rate in allocation.source_rates.items():
            flow = problem.flows[flow_id]
            assert flow.rate_min <= rate <= flow.rate_max
        for (_, flow_id), rate in allocation.local_rates.items():
            flow = problem.flows[flow_id]
            assert flow.rate_min - 1e-9 <= rate <= flow.rate_max + 1e-9

    def test_populations_within_bounds(self, base_runs):
        problem, _, multi = base_runs
        allocation = multi.allocation()
        for class_id, population in allocation.populations.items():
            assert 0 <= population <= problem.classes[class_id].max_consumers


class TestThinning:
    def test_starved_node_thins_while_others_do_not(self):
        problem = base_workload().with_node_capacity("S1", 9e4)
        multi = MultirateLRGP(problem)
        multi.run(250)
        allocation = multi.allocation()
        # f4 reaches S0 (rich) and S1 (starved): S1 should deliver it
        # slower than S0.
        assert (
            allocation.local_rates[("S1", "f4")]
            < allocation.local_rates[("S0", "f4")]
        )

    def test_utility_uses_local_rates(self, base_runs):
        problem, _, multi = base_runs
        allocation = multi.allocation()
        recomputed = multirate_total_utility(problem, allocation)
        assert multi.utilities[-1] == pytest.approx(recomputed)


class TestMechanics:
    def test_converges_on_tiny_problem(self, tiny_problem):
        multi = MultirateLRGP(tiny_problem)
        multi.run(300)
        assert multi.utilities[-1] > 0.0
        tail = multi.utilities[-10:]
        assert (max(tail) - min(tail)) / max(tail) < 0.05

    def test_negative_iterations_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            MultirateLRGP(tiny_problem).run(-1)

    def test_to_single_rate_projection(self, base_runs):
        _, _, multi = base_runs
        projected = multi.allocation().to_single_rate()
        assert set(projected.rates) == set(multi.allocation().source_rates)
