"""Integration-level tests of the synchronous LRGP driver."""

import pytest

from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible, total_utility

#: The paper's Table 2 value for the base workload.
PAPER_BASE_UTILITY = 1_328_821.0


class TestConvergenceOnBaseWorkload:
    def test_reaches_paper_utility(self, base_problem, converged_lrgp):
        final = converged_lrgp.utilities[-1]
        assert final == pytest.approx(PAPER_BASE_UTILITY, rel=0.01)

    def test_converges_quickly(self, converged_lrgp):
        iterations = iterations_until_convergence(converged_lrgp.utilities)
        assert iterations is not None
        # Paper reports 21; we allow the same order of magnitude.
        assert iterations <= 60

    def test_final_allocation_feasible(self, base_problem, converged_lrgp):
        assert is_feasible(base_problem, converged_lrgp.allocation())

    def test_recorded_utility_matches_allocation(self, base_problem, converged_lrgp):
        assert converged_lrgp.utilities[-1] == pytest.approx(
            total_utility(base_problem, converged_lrgp.allocation())
        )

    def test_rates_within_bounds(self, base_problem, converged_lrgp):
        for flow_id, rate in converged_lrgp.allocation().rates.items():
            flow = base_problem.flows[flow_id]
            assert flow.rate_min <= rate <= flow.rate_max

    def test_highest_rank_classes_fully_admitted(self, converged_lrgp):
        """Rank-100 classes (c18/c19) and rank-40 (c16/c17) should be fully
        admitted at the optimum — they dominate the benefit/cost order."""
        populations = converged_lrgp.allocation().populations
        assert populations["c18"] == 1500
        assert populations["c19"] == 1500
        assert populations["c16"] == 1000
        assert populations["c17"] == 1000

    def test_lowest_rank_classes_rejected(self, converged_lrgp):
        """Rank-1 and rank-2 classes lose admission under contention."""
        populations = converged_lrgp.allocation().populations
        assert populations["c04"] == 0
        assert populations["c14"] == 0


class TestDeterminism:
    def test_same_config_same_trajectory(self, base_problem):
        a = LRGP(base_problem, LRGPConfig.adaptive())
        b = LRGP(base_problem, LRGPConfig.adaptive())
        a.run(50)
        b.run(50)
        assert a.utilities == b.utilities

    def test_fixed_gamma_trajectory_differs_from_adaptive(self, base_problem):
        fixed = LRGP(base_problem, LRGPConfig.fixed(0.01))
        adaptive = LRGP(base_problem, LRGPConfig.adaptive())
        fixed.run(50)
        adaptive.run(50)
        assert fixed.utilities != adaptive.utilities


class TestDamping:
    def test_gamma_one_oscillates_more_than_adaptive(self, base_problem):
        """Figure 1's qualitative claim: no damping -> large oscillation."""
        import statistics

        def tail_spread(config):
            optimizer = LRGP(base_problem, config)
            optimizer.run(200)
            tail = optimizer.utilities[-50:]
            return statistics.pstdev(tail) / statistics.mean(tail)

        assert tail_spread(LRGPConfig.fixed(1.0)) > 10 * tail_spread(
            LRGPConfig.adaptive()
        )

    def test_small_gamma_converges_slower(self, base_problem):
        fast = LRGP(base_problem, LRGPConfig.fixed(0.1))
        slow = LRGP(base_problem, LRGPConfig.fixed(0.01))
        fast.run(250)
        slow.run(250)
        fast_iter = iterations_until_convergence(fast.utilities, rel_amplitude=5e-3)
        slow_iter = iterations_until_convergence(slow.utilities, rel_amplitude=5e-3)
        assert fast_iter is not None and slow_iter is not None
        assert fast_iter < slow_iter


class TestStepMechanics:
    def test_step_returns_incrementing_records(self, tiny_problem):
        optimizer = LRGP(tiny_problem)
        first = optimizer.step()
        second = optimizer.step()
        assert (first.iteration, second.iteration) == (1, 2)
        assert len(optimizer.records) == 2

    def test_snapshots_recorded_when_enabled(self, tiny_problem):
        optimizer = LRGP(tiny_problem, LRGPConfig(record_snapshots=True))
        record = optimizer.step()
        assert record.rates is not None
        assert record.populations is not None
        assert record.node_prices is not None

    def test_snapshots_omitted_by_default(self, tiny_problem):
        optimizer = LRGP(tiny_problem)
        record = optimizer.step()
        assert record.rates is None

    def test_run_negative_rejected(self, tiny_problem):
        with pytest.raises(ValueError):
            LRGP(tiny_problem).run(-1)

    def test_run_until_converged(self, tiny_problem):
        optimizer = LRGP(tiny_problem)
        iterations = optimizer.run_until_converged(max_iterations=500)
        assert iterations is not None
        assert optimizer.iteration == iterations

    def test_first_iteration_rates_at_max(self, tiny_problem):
        """With zero initial prices and populations, Algorithm 1's first
        pass faces zero price and sends every flow to its cap."""
        optimizer = LRGP(tiny_problem, LRGPConfig(record_snapshots=True))
        record = optimizer.step()
        for flow_id, rate in record.rates.items():
            assert rate == tiny_problem.flows[flow_id].rate_max


class TestDynamics:
    def test_remove_flow_drops_its_state(self, base_problem):
        optimizer = LRGP(base_problem)
        optimizer.run(30)
        optimizer.remove_flow("f5")
        assert "f5" not in optimizer.allocation().rates
        assert "c18" not in optimizer.allocation().populations
        optimizer.run(30)
        assert is_feasible(optimizer.problem, optimizer.allocation())

    def test_removal_preserves_other_prices(self, base_problem):
        optimizer = LRGP(base_problem)
        optimizer.run(30)
        prices_before = optimizer.node_prices()
        optimizer.remove_flow("f5")
        assert optimizer.node_prices() == prices_before

    def test_utility_drops_then_recovers_partially(self, base_problem):
        optimizer = LRGP(base_problem, LRGPConfig.adaptive())
        optimizer.run(150)
        stable = optimizer.utilities[-1]
        optimizer.remove_flow("f5")
        optimizer.run(50)
        recovered = optimizer.utilities[-1]
        # f5 serves rank-100 classes; its loss must cost real utility...
        assert recovered < 0.8 * stable
        # ...but the freed capacity is reabsorbed (utility well above the
        # naive "subtract f5's whole contribution at the old allocation").
        assert recovered > 0.25 * stable

    def test_set_problem_to_identical_instance_is_noop_on_state(
        self, base_problem
    ):
        optimizer = LRGP(base_problem)
        optimizer.run(20)
        rates_before = dict(optimizer.allocation().rates)
        optimizer.set_problem(base_problem)
        assert optimizer.allocation().rates == rates_before


class TestSmallProblem:
    def test_tiny_problem_converges_feasibly(self, tiny_problem):
        optimizer = LRGP(tiny_problem, LRGPConfig.adaptive())
        optimizer.run(300)
        assert is_feasible(tiny_problem, optimizer.allocation())
        assert optimizer.utilities[-1] > 0.0

    def test_node_price_positive_under_contention(self, tiny_problem):
        optimizer = LRGP(tiny_problem)
        optimizer.run(300)
        assert optimizer.node_prices()["S"] > 0.0
