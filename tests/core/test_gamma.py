"""Unit tests for gamma schedules (section 4.2 heuristic)."""

import math

import pytest

from repro.core.gamma import (
    GAMMA_LOWER_BOUND,
    GAMMA_UPPER_BOUND,
    AdaptiveGamma,
    FixedGamma,
)


class TestFixedGamma:
    def test_constant(self):
        schedule = FixedGamma(0.05)
        assert schedule.value() == 0.05
        schedule.observe(1.0)
        schedule.observe(-1.0)
        assert schedule.value() == 0.05

    def test_clone_is_independent(self):
        schedule = FixedGamma(0.05)
        assert schedule.clone() is not schedule
        assert schedule.clone().value() == 0.05

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedGamma(-0.1)


class TestAdaptiveGamma:
    def test_starts_at_upper_clamp_by_default(self):
        assert AdaptiveGamma().value() == GAMMA_UPPER_BOUND

    def test_initial_is_clamped(self):
        assert AdaptiveGamma(initial=5.0).value() == GAMMA_UPPER_BOUND
        assert AdaptiveGamma(initial=1e-9).value() == GAMMA_LOWER_BOUND

    def test_grows_while_quiet(self):
        schedule = AdaptiveGamma(initial=0.01)
        schedule.observe(1.0)
        schedule.observe(0.5)  # same direction: no fluctuation
        assert schedule.value() == pytest.approx(0.012)

    def test_halves_on_fluctuation(self):
        schedule = AdaptiveGamma(initial=0.08)
        schedule.observe(1.0)
        schedule.observe(-1.0)  # reversal
        assert schedule.value() == pytest.approx((0.08 + 0.001) * 0.5)

    def test_repeated_fluctuations_hit_lower_bound(self):
        schedule = AdaptiveGamma(initial=0.1)
        sign = 1.0
        for _ in range(30):
            schedule.observe(sign)
            sign = -sign
        assert schedule.value() == GAMMA_LOWER_BOUND

    def test_growth_capped_at_upper_bound(self):
        schedule = AdaptiveGamma(initial=0.0995)
        for _ in range(20):
            schedule.observe(1.0)
        assert schedule.value() == GAMMA_UPPER_BOUND

    def test_zero_delta_does_not_register_direction(self):
        schedule = AdaptiveGamma(initial=0.01)
        schedule.observe(1.0)
        schedule.observe(0.0)   # no movement: not a fluctuation
        schedule.observe(-1.0)  # reversal vs the last nonzero delta
        assert schedule.value() < 0.012  # the halving happened

    def test_clone_resets_state(self):
        schedule = AdaptiveGamma(initial=0.05)
        schedule.observe(1.0)
        schedule.observe(-1.0)
        clone = schedule.clone()
        assert clone.value() == 0.05

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            AdaptiveGamma(lower=0.0)
        with pytest.raises(ValueError):
            AdaptiveGamma(lower=0.5, upper=0.1)
        with pytest.raises(ValueError):
            AdaptiveGamma(backoff=1.5)
        with pytest.raises(ValueError):
            AdaptiveGamma(increment=-0.1)

    def test_paper_bounds_are_defaults(self):
        assert GAMMA_LOWER_BOUND == 0.001
        assert GAMMA_UPPER_BOUND == 0.1


class TestNonFiniteGammaHardening:
    """A NaN step size slips past plain sign checks (``nan < 0`` is False)
    and would poison every subsequent price update."""

    def test_fixed_gamma_rejects_nan_and_inf(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                FixedGamma(bad)

    def test_fixed_gamma_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedGamma(-0.01)

    def test_adaptive_gamma_rejects_nan_initial(self):
        with pytest.raises(ValueError):
            AdaptiveGamma(initial=math.nan)

    def test_adaptive_gamma_rejects_nan_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveGamma(lower=math.nan)
        with pytest.raises(ValueError):
            AdaptiveGamma(upper=math.nan)

    def test_infinite_initial_clamps_to_upper_bound(self):
        # inf is not NaN: min/max clamping handles it deterministically.
        assert AdaptiveGamma(initial=math.inf).value() == GAMMA_UPPER_BOUND
