"""Tests for link-bottleneck workloads and the link-pricing machinery.

With a single shared uplink and generous node capacity, the equilibrium is
analytic: all consumers are admitted, so flow i's weight is
``N_i = ranks_i * max_consumers * consumer_nodes`` and Algorithm 1 gives
``r_i = N_i / p - 1`` (log utility).  The uplink then pins
``sum_i r_i = c_l``, i.e. ``p* = (sum_i N_i) / (c_l + flows)``.
"""

import pytest

from repro.core.convergence import iterations_until_convergence
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.allocation import is_feasible, link_usage
from repro.workloads.bottleneck import link_bottleneck_workload

LINK_GAMMA = 0.5


def optimize(problem, iterations=600):
    optimizer = LRGP(problem, LRGPConfig(link_gamma=LINK_GAMMA))
    optimizer.run(iterations)
    return optimizer


class TestWorkloadShape:
    def test_every_flow_crosses_the_uplink(self):
        problem = link_bottleneck_workload(link_capacity=100.0)
        assert set(problem.flows_on_link("uplink")) == set(problem.flows)
        assert problem.bottleneck_links() == ("uplink",)

    def test_validation(self):
        with pytest.raises(ValueError):
            link_bottleneck_workload(link_capacity=0.0)
        with pytest.raises(ValueError):
            link_bottleneck_workload(link_capacity=10.0, flows=0)


class TestLinkPricingEquilibrium:
    @pytest.mark.parametrize("capacity", [300.0, 100.0, 30.0])
    def test_usage_pins_to_capacity(self, capacity):
        problem = link_bottleneck_workload(link_capacity=capacity)
        optimizer = optimize(problem)
        usage = link_usage(problem, optimizer.allocation(), "uplink")
        assert usage == pytest.approx(capacity, rel=0.01)
        assert is_feasible(problem, optimizer.allocation())

    @pytest.mark.parametrize("capacity", [300.0, 30.0])
    def test_price_matches_analytic_equilibrium(self, capacity):
        problem = link_bottleneck_workload(link_capacity=capacity)
        optimizer = optimize(problem)
        # N_i = rank_i * 200 consumers * 2 nodes; sum over ranks (50,20,5).
        total_weight = (50.0 + 20.0 + 5.0) * 200 * 2
        expected_price = total_weight / (capacity + 3.0)
        assert optimizer.link_prices()["uplink"] == pytest.approx(
            expected_price, rel=0.01
        )

    def test_rates_are_utility_weighted(self):
        """Higher aggregate-utility flows get proportionally more rate:
        r_i + 1 proportional to N_i (shadow-price allocation)."""
        problem = link_bottleneck_workload(link_capacity=300.0)
        optimizer = optimize(problem)
        rates = optimizer.allocation().rates
        shares = [(rates["f0"] + 1) / 50.0, (rates["f1"] + 1) / 20.0,
                  (rates["f2"] + 1) / 5.0]
        assert max(shares) == pytest.approx(min(shares), rel=0.02)

    def test_converges(self):
        problem = link_bottleneck_workload(link_capacity=300.0)
        optimizer = optimize(problem)
        assert iterations_until_convergence(optimizer.utilities) is not None


class TestMixedContention:
    def test_node_and_link_both_priced(self):
        """Squeeze nodes too: both price families engage and the result
        stays feasible."""
        problem = link_bottleneck_workload(
            link_capacity=300.0, node_capacity=2.0e5
        )
        optimizer = optimize(problem, iterations=800)
        allocation = optimizer.allocation()
        assert is_feasible(problem, allocation)
        assert optimizer.link_prices()["uplink"] >= 0.0
        assert any(price > 0.0 for price in optimizer.node_prices().values())
        # Node contention now forces admission control.
        admitted = sum(allocation.populations.values())
        connected = sum(c.max_consumers for c in problem.classes.values())
        assert admitted < connected
