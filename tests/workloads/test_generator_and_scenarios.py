"""Tests for the random workload generator and the section 1.1 scenarios."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.events.simulator import EventInfrastructure
from repro.model.allocation import is_feasible
from repro.workloads.generator import GeneratorConfig, generate_workload
from repro.workloads.scenarios import latest_price_scenario, trade_data_scenario


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_workload(seed=5)
        b = generate_workload(seed=5)
        assert set(a.flows) == set(b.flows)
        assert set(a.classes) == set(b.classes)
        assert all(
            a.classes[c].max_consumers == b.classes[c].max_consumers
            for c in a.classes
        )

    def test_different_seeds_differ(self):
        a = generate_workload(seed=1)
        b = generate_workload(seed=2)
        assert any(
            a.classes[c].max_consumers != b.classes[c].max_consumers
            for c in a.classes
        )

    def test_respects_config_shape(self):
        config = GeneratorConfig(
            flows=4, consumer_nodes=5, nodes_per_flow=3, classes_per_flow_node=2
        )
        problem = generate_workload(config, seed=0)
        assert len(problem.flows) == 4
        assert len(problem.classes) == 4 * 3 * 2
        for flow_id in problem.flows:
            assert len(problem.route(flow_id).nodes) == 4  # hub + 3

    def test_generated_problems_optimize_feasibly(self):
        for seed in range(3):
            problem = generate_workload(GeneratorConfig(flows=3), seed=seed)
            optimizer = LRGP(problem, LRGPConfig.adaptive())
            optimizer.run(120)
            assert is_feasible(problem, optimizer.allocation())
            assert optimizer.utilities[-1] > 0.0

    def test_heterogeneous_consumer_costs(self):
        config = GeneratorConfig(consumer_cost_low=5.0, consumer_cost_high=30.0)
        problem = generate_workload(config, seed=0)
        costs = {
            problem.costs.consumer(cls.node, class_id)
            for class_id, cls in problem.classes.items()
        }
        assert len(costs) > 1
        assert all(5.0 <= cost <= 30.0 for cost in costs)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(flows=0)
        with pytest.raises(ValueError):
            GeneratorConfig(rank_low=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(rate_min=10.0, rate_max=5.0)


class TestTradeDataScenario:
    def test_problem_is_valid_and_optimizable(self):
        scenario = trade_data_scenario()
        optimizer = LRGP(scenario.problem)
        optimizer.run(200)
        assert is_feasible(scenario.problem, optimizer.allocation())

    def test_gold_prioritized_over_public(self):
        scenario = trade_data_scenario()
        optimizer = LRGP(scenario.problem)
        optimizer.run(250)
        allocation = optimizer.allocation()
        gold_fraction = allocation.population("gold") / 50
        public_fraction = allocation.population("public") / 5000
        assert gold_fraction > 0.9
        assert public_fraction < 0.5

    def test_public_messages_stripped(self):
        scenario = trade_data_scenario(gold_consumers=2, public_consumers=5)
        infra = EventInfrastructure(
            scenario.problem,
            payload_factories=scenario.payload_factories,
            transforms=scenario.transforms,
        )
        from repro.model.allocation import Allocation

        infra.enact(
            Allocation(rates={"trades": 100.0},
                       populations={"gold": 2, "public": 5})
        )
        infra.run_for(1.0)
        gold_payload = infra.consumers["gold"][0].last_payload
        public_payload = infra.consumers["public"][0].last_payload
        assert "counterparty" in gold_payload
        assert "counterparty" not in public_payload
        assert public_payload["symbol"] == "IBM"


class TestLatestPriceScenario:
    def test_problem_is_valid_and_optimizable(self):
        scenario = latest_price_scenario()
        optimizer = LRGP(scenario.problem)
        optimizer.run(200)
        assert is_feasible(scenario.problem, optimizer.allocation())

    def test_elasticity_rate_drops_before_consumers(self):
        """The elastic flow absorbs a capacity squeeze through rate, not
        (mostly) through admission."""
        rich = latest_price_scenario(node_capacity=9e5)
        poor = latest_price_scenario(node_capacity=9e4)
        rates, admitted = [], []
        for scenario in (rich, poor):
            optimizer = LRGP(scenario.problem)
            optimizer.run(250)
            allocation = optimizer.allocation()
            rates.append(allocation.rates["prices"])
            admitted.append(sum(allocation.populations.values()))
        assert rates[1] < rates[0] / 2  # rate collapsed
        assert admitted[1] > 0.8 * admitted[0]  # population largely kept

    def test_filters_apply_per_class(self):
        scenario = latest_price_scenario(consumer_nodes=2, consumers_per_class=3)
        from repro.model.allocation import Allocation

        infra = EventInfrastructure(
            scenario.problem,
            payload_factories=scenario.payload_factories,
            transforms=scenario.transforms,
        )
        infra.enact(
            Allocation(
                rates={"prices": 50.0},
                populations={c: 3 for c in scenario.problem.classes},
            )
        )
        infra.run_for(4.0)
        received = {
            class_id: infra.consumers[class_id][0].received
            for class_id in scenario.problem.classes
        }
        # pop1's threshold is stricter than pop0's.
        assert received["watchers-pop1"] <= received["watchers-pop0"]
        assert received["watchers-pop0"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            latest_price_scenario(consumer_nodes=0)
