"""Tests for dynamic (churn) scenarios."""

import pytest

from repro.core.lrgp import LRGPConfig
from repro.workloads.base import base_workload
from repro.workloads.dynamics import (
    DynamicScenario,
    ScheduledChange,
    churn_scenario,
)


class TestValidation:
    def test_unsorted_changes_rejected(self):
        problem = base_workload()
        with pytest.raises(ValueError, match="sorted"):
            DynamicScenario(
                initial=problem,
                changes=[
                    ScheduledChange(50, "b", lambda p: p),
                    ScheduledChange(10, "a", lambda p: p),
                ],
            )

    def test_change_after_end_rejected(self):
        problem = base_workload()
        with pytest.raises(ValueError, match="after the run ends"):
            DynamicScenario(
                initial=problem,
                changes=[ScheduledChange(500, "late", lambda p: p)],
                total_iterations=100,
            )

    def test_change_at_iteration_zero_rejected(self):
        with pytest.raises(ValueError):
            ScheduledChange(0, "too early", lambda p: p)


class TestChurnScenario:
    @pytest.fixture(scope="class")
    def run(self):
        return churn_scenario().run(LRGPConfig.adaptive())

    def test_all_events_fire_in_order(self, run):
        assert [label for _, label in run.events] == [
            "S1 capacity halved",
            "flow f5 leaves",
            "S1 capacity restored",
        ]
        assert [iteration for iteration, _ in run.events] == [80, 140, 200]

    def test_capacity_loss_costs_utility(self, run):
        before = run.utility_before(79)
        settled = run.utility_before(135)
        assert settled < 0.95 * before

    def test_flow_departure_costs_utility(self, run):
        before = run.utility_before(139)
        settled = run.utility_before(195)
        assert settled < 0.6 * before

    def test_capacity_restore_recovers_some_utility(self, run):
        before_restore = run.utility_before(199)
        end = run.utility_before(300)
        assert end > before_restore

    def test_stabilizes_after_final_event(self, run):
        tail = run.utilities[-20:]
        assert (max(tail) - min(tail)) / max(tail) < 0.01

    def test_trajectory_covers_every_iteration(self, run):
        assert len(run.utilities) == 300
