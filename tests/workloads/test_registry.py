"""Workload registry: names, specs, aliases, deprecations."""

import pytest

from repro.workloads.registry import (
    WorkloadEntry,
    canonical_workload_spec,
    entry_for,
    format_workload_spec,
    get_workload,
    list_aliases,
    list_workloads,
    parse_workload_spec,
    register_alias,
    register_workload,
    workload_from_spec,
)

#: Every workload name the pre-registry CLI table accepted — each must
#: stay reachable through the registry (the api_redesign contract).
OLD_CLI_SPELLINGS = [
    "base",
    "base-pow25",
    "base-pow50",
    "base-pow75",
    "flows-x2",
    "flows-x4",
    "cnodes-x2",
    "cnodes-x4",
    "cnodes-x8",
    "trade-data",
    "latest-price",
    "link-bottleneck",
    "tree",
    "micro",
]


class TestRegistryListing:
    def test_core_names_registered(self):
        names = list_workloads()
        for expected in ("micro", "base", "flows", "cnodes", "tree",
                         "bottleneck", "generated", "fault-churn"):
            assert expected in names

    def test_listing_is_sorted(self):
        names = list_workloads()
        assert list(names) == sorted(names)

    def test_entry_for_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="unknown workload"):
            entry_for("no-such-workload")

    def test_entries_document_defaults(self):
        entry = entry_for("tree")
        assert isinstance(entry, WorkloadEntry)
        assert "depth" in entry.defaults


class TestOldSpellings:
    @pytest.mark.parametrize("name", OLD_CLI_SPELLINGS)
    def test_every_old_cli_spelling_builds(self, name):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            problem = get_workload(name)
        assert problem.flows

    def test_deprecated_spellings_warn_with_replacement(self):
        with pytest.warns(DeprecationWarning, match="base:shape=pow50"):
            get_workload("base-pow50")
        with pytest.warns(DeprecationWarning, match="bottleneck"):
            get_workload("link-bottleneck")

    def test_stable_aliases_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            get_workload("flows-x2")
            get_workload("cnodes-x2")

    def test_alias_resolves_like_explicit_params(self):
        via_alias = get_workload("flows-x2")
        explicit = get_workload("flows", factor=2)
        assert via_alias.describe() == explicit.describe()

    def test_explicit_params_override_alias_implied(self):
        problem = get_workload("flows-x2", factor=4)
        assert problem.describe() == get_workload("flows", factor=4).describe()


class TestSpecs:
    def test_parse_name_only(self):
        assert parse_workload_spec("base") == ("base", {})

    def test_parse_coerces_values(self):
        name, params = parse_workload_spec(
            "generated:seed=3,flows=6,link_capacity=1.5e2,strict=true,shape=log"
        )
        assert name == "generated"
        assert params == {
            "seed": 3,
            "flows": 6,
            "link_capacity": 150.0,
            "strict": True,
            "shape": "log",
        }

    def test_parse_rejects_malformed_param(self):
        with pytest.raises(ValueError, match="expected k=v"):
            parse_workload_spec("base:shape")

    def test_parse_rejects_empty_name(self):
        with pytest.raises(ValueError, match="empty workload name"):
            parse_workload_spec(":k=v")

    def test_format_sorts_keys(self):
        assert (
            format_workload_spec("tree", {"flows": 2, "depth": 4})
            == "tree:depth=4,flows=2"
        )

    def test_canonical_resolves_aliases_and_sorts(self):
        assert canonical_workload_spec("flows-x4") == "flows:factor=4"
        assert (
            canonical_workload_spec("tree:flows=2,depth=4")
            == "tree:depth=4,flows=2"
        )

    def test_canonical_is_idempotent(self):
        spec = canonical_workload_spec("base-pow50")
        assert canonical_workload_spec(spec) == spec

    def test_canonical_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown workload"):
            canonical_workload_spec("nope:k=1")

    def test_workload_from_spec_builds_with_params(self):
        problem = workload_from_spec("tree:depth=2,flows=2")
        assert problem.flows

    def test_bad_parameter_names_are_reported_with_documented_ones(self):
        with pytest.raises(TypeError, match="documented parameters"):
            get_workload("micro", bogus_knob=1)

    @pytest.mark.parametrize(
        "value",
        ["nan", "NaN", "inf", "-inf", "Infinity", "-INFINITY", "+inf"],
    )
    def test_parse_rejects_non_finite_values(self, value):
        # Pre-fix these coerced to non-finite floats, which poison
        # config_hash cache keys and violate the canonical_json /
        # JsonlSink no-non-finite contract.
        with pytest.raises(ValueError, match="non-finite"):
            parse_workload_spec(f"base:link_capacity={value}")

    def test_parse_canonicalizes_int_spellings(self):
        # Pre-fix, "1_0" and "10" aliased one workload to two different
        # sweep cache entries; both must coerce to the same int.
        _, underscored = parse_workload_spec("flows:factor=1_0")
        _, plain = parse_workload_spec("flows:factor=10")
        assert underscored == plain == {"factor": 10}
        assert (
            canonical_workload_spec("flows:factor=1_0")
            == canonical_workload_spec("flows:factor=10")
            == "flows:factor=10"
        )

    @pytest.mark.parametrize(
        "spec",
        ["base:,,flows=4", "base:flows=4,", "base:,", "tree:,depth=2"],
    )
    def test_parse_rejects_empty_parts(self, spec):
        # Pre-fix, empty parts were silently dropped, so a typo'd spec
        # quietly aliased to a different grid cell.
        with pytest.raises(ValueError, match="empty parameter"):
            parse_workload_spec(spec)

    def test_parse_rejects_dangling_colon(self):
        with pytest.raises(ValueError, match="dangling"):
            parse_workload_spec("base:")
        with pytest.raises(ValueError, match="dangling"):
            parse_workload_spec("base:  ")


class TestRegistration:
    def test_register_rejects_spec_syntax_in_name(self):
        with pytest.raises(ValueError, match="spec syntax"):
            register_workload("bad:name", lambda: None, "nope")

    def test_alias_cycle_detected(self):
        register_alias("cycle-a", "cycle-b")
        register_alias("cycle-b", "cycle-a")
        try:
            with pytest.raises(ValueError, match="alias cycle"):
                canonical_workload_spec("cycle-a")
        finally:
            from repro.workloads import registry

            registry._ALIASES.pop("cycle-a", None)
            registry._ALIASES.pop("cycle-b", None)

    def test_list_aliases_maps_to_canonical_specs(self):
        aliases = list_aliases()
        assert aliases["flows-x4"] == "flows:factor=4"
        assert aliases["base-pow25"] == "base:shape=pow25"
