"""Tests that the base workload matches Table 1 exactly."""

import pytest

from repro.model.costs import (
    GRYPHON_CONSUMER_COST,
    GRYPHON_FLOW_NODE_COST,
    GRYPHON_NODE_CAPACITY,
)
from repro.utility.functions import LogUtility, PowerUtility
from repro.workloads.base import (
    TABLE1_CLASS_SPECS,
    WorkloadParams,
    base_workload,
    build_workload,
)

#: (class pair, flow, nodes, n_max, rank) straight from Table 1.
TABLE1_ROWS = [
    ((0, 1), "f0", ("S0", "S2"), 400, 20.0),
    ((2, 3), "f0", ("S0", "S2"), 800, 5.0),
    ((4, 5), "f0", ("S0", "S2"), 2000, 1.0),
    ((6, 7), "f1", ("S0", "S1"), 1000, 15.0),
    ((8, 9), "f2", ("S1", "S2"), 1500, 10.0),
    ((10, 11), "f3", ("S0", "S2"), 400, 30.0),
    ((12, 13), "f3", ("S0", "S2"), 800, 3.0),
    ((14, 15), "f3", ("S0", "S2"), 2000, 2.0),
    ((16, 17), "f4", ("S0", "S1"), 1000, 40.0),
    ((18, 19), "f5", ("S1", "S2"), 1500, 100.0),
]


class TestTable1Exactness:
    def test_shape(self, base_problem):
        assert len(base_problem.flows) == 6
        assert len(base_problem.classes) == 20
        assert base_problem.consumer_nodes() == ("S0", "S1", "S2")

    @pytest.mark.parametrize("pair,flow,nodes,n_max,rank", TABLE1_ROWS)
    def test_class_rows(self, base_problem, pair, flow, nodes, n_max, rank):
        for index, node in zip(pair, nodes):
            cls = base_problem.classes[f"c{index:02d}"]
            assert cls.flow_id == flow
            assert cls.node == node
            assert cls.max_consumers == n_max
            assert isinstance(cls.utility, LogUtility)
            assert cls.utility.scale == rank

    def test_resource_model(self, base_problem):
        for node_id in base_problem.consumer_nodes():
            assert base_problem.nodes[node_id].capacity == GRYPHON_NODE_CAPACITY
            for flow_id in base_problem.flows_at_node(node_id):
                if node_id == "P":
                    continue
                assert (
                    base_problem.costs.flow_node(node_id, flow_id)
                    == GRYPHON_FLOW_NODE_COST
                )
            for class_id in base_problem.classes_at_node(node_id):
                assert (
                    base_problem.costs.consumer(node_id, class_id)
                    == GRYPHON_CONSUMER_COST
                )

    def test_rate_bounds(self, base_problem):
        for flow in base_problem.flows.values():
            assert flow.rate_min == 10.0
            assert flow.rate_max == 1000.0

    def test_flows_routed_only_where_classes_live(self, base_problem):
        for flow_id in base_problem.flows:
            reached = set(base_problem.route(flow_id).nodes) - {"P"}
            hosting = {
                base_problem.classes[c].node
                for c in base_problem.classes_of_flow(flow_id)
            }
            assert reached == hosting

    def test_no_link_bottlenecks(self, base_problem):
        assert base_problem.bottleneck_links() == ()

    def test_specs_table_consistent(self):
        assert len(TABLE1_CLASS_SPECS) == 10


class TestUtilityShapes:
    def test_power_shape(self):
        problem = base_workload("pow25")
        cls = problem.classes["c00"]
        assert isinstance(cls.utility, PowerUtility)
        assert cls.utility.exponent == 0.25
        assert cls.utility.scale == 20.0

    def test_callable_shape(self):
        problem = base_workload(lambda rank: LogUtility(scale=rank, offset=2.0))
        assert problem.classes["c00"].utility.offset == 2.0

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown utility shape"):
            base_workload("cubic")

    def test_bad_replication_rejected(self):
        with pytest.raises(ValueError):
            build_workload(WorkloadParams(flow_replicas=0))
