"""Tests for the section 4.3 scaled workloads."""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.workloads.scaling import (
    TABLE2_WORKLOADS,
    scale_consumer_nodes,
    scale_flows,
)


class TestShapes:
    def test_scale_flows_shape(self):
        problem = scale_flows(2)
        assert len(problem.flows) == 12
        assert len(problem.consumer_nodes()) == 6
        assert len(problem.classes) == 40

    def test_scale_consumer_nodes_shape(self):
        problem = scale_consumer_nodes(2)
        assert len(problem.flows) == 6
        assert len(problem.consumer_nodes()) == 6
        assert len(problem.classes) == 40

    def test_flow_replicas_are_independent(self):
        """Flows of one replica must not reach another replica's nodes."""
        problem = scale_flows(2)
        for flow_id in problem.flows:
            suffix = flow_id.split(".")[-1]
            for node_id in problem.route(flow_id).nodes:
                if node_id == "P":
                    continue
                assert node_id.endswith(suffix)

    def test_node_replicas_share_flows(self):
        """With node scaling, each flow reaches every replica of its nodes."""
        problem = scale_consumer_nodes(2)
        route = problem.route("f1")  # f1 -> S0, S1 in the base workload
        reached = set(route.nodes) - {"P"}
        assert reached == {"S0.n0", "S0.n1", "S1.n0", "S1.n1"}

    def test_table2_covers_paper_rows(self):
        assert list(TABLE2_WORKLOADS) == [
            "6 flows, 3 c-nodes",
            "12 flows, 6 c-nodes",
            "24 flows, 12 c-nodes",
            "6 flows, 6 c-nodes",
            "6 flows, 12 c-nodes",
            "6 flows, 24 c-nodes",
        ]


class TestLinearity:
    """Section 4.3: utility grows linearly with consumer nodes and
    convergence is unaffected by scale."""

    @pytest.fixture(scope="class")
    def base_utility(self):
        optimizer = LRGP(scale_flows(1), LRGPConfig.adaptive())
        optimizer.run(120)
        return optimizer.utilities[-1]

    @pytest.mark.parametrize("factor", [2, 4])
    def test_flow_scaling_linear(self, base_utility, factor):
        optimizer = LRGP(scale_flows(factor), LRGPConfig.adaptive())
        optimizer.run(120)
        assert optimizer.utilities[-1] == pytest.approx(
            factor * base_utility, rel=0.01
        )

    @pytest.mark.parametrize("factor", [2, 4])
    def test_node_scaling_linear(self, base_utility, factor):
        optimizer = LRGP(scale_consumer_nodes(factor), LRGPConfig.adaptive())
        optimizer.run(120)
        assert optimizer.utilities[-1] == pytest.approx(
            factor * base_utility, rel=0.01
        )

    def test_convergence_iterations_flat_across_scales(self):
        from repro.core.convergence import iterations_until_convergence

        counts = []
        for build in TABLE2_WORKLOADS.values():
            optimizer = LRGP(build(), LRGPConfig.adaptive())
            optimizer.run(120)
            counts.append(iterations_until_convergence(optimizer.utilities))
        assert all(count is not None for count in counts)
        assert max(counts) - min(counts) <= 10  # paper: 21-24 across scales
