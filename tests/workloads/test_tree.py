"""Tests for the tree-overlay workloads."""


import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.core.two_stage import compute_prune_set, two_stage_optimize
from repro.model.allocation import is_feasible
from repro.workloads.tree import tree_workload


class TestStructure:
    def test_shape(self):
        problem = tree_workload(depth=3, branching=2, flows=4)
        # 8 leaves host consumers; 1 root + 2 + 4 relays.
        assert len(problem.consumer_nodes()) == 8
        assert len(problem.nodes) == 1 + 2 + 4 + 8
        assert len(problem.links) == 14

    def test_routes_traverse_relays(self):
        problem = tree_workload()
        route = problem.route("f0")
        assert route.nodes[0] == "root"
        assert any(node.startswith("relay") for node in route.nodes)
        assert any(node.startswith("leaf") for node in route.nodes)

    def test_relays_pay_flow_cost_but_host_no_classes(self):
        problem = tree_workload()
        route = problem.route("f0")
        relays = [n for n in route.nodes if n.startswith("relay")]
        assert relays
        for relay in relays:
            assert problem.costs.flow_node(relay, "f0") > 0.0
            assert problem.classes_at_node(relay) == ()

    def test_flows_share_interior_links(self):
        """With wrapping leaf blocks, at least one link carries >1 flow."""
        problem = tree_workload(depth=3, branching=2, flows=4, leaves_per_flow=3)
        shared = [
            link_id
            for link_id in problem.links
            if len(problem.flows_on_link(link_id)) > 1
        ]
        assert shared

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_workload(depth=0)
        with pytest.raises(ValueError):
            tree_workload(flows=0)


class TestOptimization:
    def test_lrgp_feasible_and_positive(self):
        problem = tree_workload()
        optimizer = LRGP(problem, LRGPConfig.adaptive())
        optimizer.run(200)
        assert is_feasible(problem, optimizer.allocation())
        assert optimizer.utilities[-1] > 0.0

    def test_starved_leaf_subtree_prunes(self):
        """Crushing one leaf's capacity prunes its (leaf, flow) pairs but
        keeps relays that still serve sibling leaves."""
        problem = tree_workload().with_node_capacity("leaf0", 50.0)
        result = two_stage_optimize(problem, iterations=200)
        pruned_nodes = {node for node, _ in result.prune_set.flow_nodes}
        assert "leaf0" in pruned_nodes
        # relay2.0 still relays to leaf1 for f0: must not be pruned.
        assert "relay2.0" not in pruned_nodes
        assert result.stage2_utility >= result.stage1_utility

    def test_whole_subtree_collapses_when_both_leaves_starve(self):
        from repro.model.allocation import Allocation

        problem = tree_workload()
        # Nobody admitted anywhere on f0: its entire branch is prunable.
        allocation = Allocation(
            rates={f: 10.0 for f in problem.flows},
            populations={c: 0 for c in problem.classes},
        )
        prune = compute_prune_set(problem, allocation)
        f0_pruned = {node for node, flow in prune.flow_nodes if flow == "f0"}
        route = problem.route("f0")
        assert f0_pruned == set(route.nodes) - {"root"}

    def test_link_pricing_on_tree(self):
        """With generous leaves and tight top-level links, the links under
        the root become the bottleneck: they get priced and the flows
        sharing each link split its capacity."""
        problem = tree_workload(link_capacity=100.0, leaf_capacity=5e6)
        optimizer = LRGP(problem, LRGPConfig(link_gamma=0.5))
        optimizer.run(800)
        allocation = optimizer.allocation()
        assert is_feasible(problem, allocation)
        prices = optimizer.link_prices()
        assert prices["root->relay1.0"] > 0.0
        assert prices["root->relay1.1"] > 0.0
        # Two flows share each top link: each settles at half its capacity.
        for flow_id, rate in allocation.rates.items():
            assert rate == pytest.approx(50.0, rel=0.02), flow_id

    def test_power_shape_supported(self):
        problem = tree_workload(shape="pow50")
        optimizer = LRGP(problem)
        optimizer.run(150)
        assert is_feasible(problem, optimizer.allocation())
