"""Project-level engine + R9–R14 rule pack, driven by checked-in fixtures.

The ``tests/analysis/fixtures/rNN_*`` trees are miniature projects, each
containing a true positive for one rule — cross-module where the rule is
interprocedural, so a per-file scanner provably cannot find them (asserted
below by re-running with ``project=False``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, analyze_paths
from repro.analysis.engine import build_context
from repro.analysis.project import ProjectContext, build_project

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _findings(tree: str, rule_id: str, *, project: bool = True):
    root = FIXTURES / tree
    assert root.is_dir(), f"missing fixture tree {root}"
    return analyze_paths([root], [RULES[rule_id]()], project=project)


class TestRulePackFixtures:
    """Each checked-in fixture tree yields its rule's true positive."""

    def test_r9_cross_module_shared_state(self) -> None:
        findings = _findings("r9_shared_state", "R9")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == "R9"
        assert finding.path.endswith("registry.py")
        assert "SHARED_QUEUE" in finding.message
        assert "ProducerAgent" in finding.message
        assert "DrainAgent" in finding.message

    def test_r9_needs_the_project_pass(self) -> None:
        """Per-file mode cannot see the cross-module race."""
        assert _findings("r9_shared_state", "R9", project=False) == []

    def test_r10_wall_clock_two_calls_from_delivery(self) -> None:
        findings = _findings("r10_time_purity", "R10")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path.endswith("clock.py"), (
            "the finding must land on the wall-clock call site, not the root"
        )
        assert "time.time" in finding.message

    def test_r10_needs_the_project_pass(self) -> None:
        assert _findings("r10_time_purity", "R10", project=False) == []

    def test_r11_unordered_iteration_on_dispatch_path(self) -> None:
        findings = _findings("r11_iteration", "R11")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("self._peers" in message for message in messages)
        assert any("glob.glob" in message for message in messages)

    def test_r11_findings_carry_mechanical_fixes(self) -> None:
        findings = _findings("r11_iteration", "R11")
        assert findings
        for finding in findings:
            assert finding.fix is not None
            assert finding.fix.replacement.startswith("sorted(")

    def test_r12_view_aliasing_and_dtype_drift(self) -> None:
        findings = _findings("r12_numpy", "R12")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("view" in message for message in messages)
        assert any("float32" in message for message in messages)

    def test_r13_event_allocated_before_guard(self) -> None:
        findings = _findings("r13_telemetry", "R13")
        assert len(findings) == 1
        assert "IterationEvent" in findings[0].message

    def test_r14_dropped_coroutine_and_blocking_sleep(self) -> None:
        findings = _findings("r14_async", "R14")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("never awaited" in message for message in messages)
        assert any("time.sleep" in message for message in messages)

    @pytest.mark.parametrize(
        "tree,rule_id",
        [
            ("r9_shared_state", "R9"),
            ("r10_time_purity", "R10"),
            ("r11_iteration", "R11"),
            ("r12_numpy", "R12"),
            ("r13_telemetry", "R13"),
            ("r14_async", "R14"),
        ],
    )
    def test_full_rule_set_still_reports_the_rule(
        self, tree: str, rule_id: str
    ) -> None:
        """The pack finding survives a full R1–R14 run over the tree."""
        findings = analyze_paths([FIXTURES / tree])
        assert any(finding.rule_id == rule_id for finding in findings)


class TestInlineSuppressions:
    """``# repro-lint: disable=R9`` silences project-pass findings too."""

    def test_project_finding_respects_line_suppression(
        self, tmp_path: Path
    ) -> None:
        module = tmp_path / "src" / "repro" / "runtime" / "shared.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "CACHE: dict = {}  # repro-lint: disable=R9\n"
            "\n"
            "\n"
            "class ReadAgent:\n"
            "    def act(self, stamp: float) -> object:\n"
            "        return CACHE.get('x')\n"
            "\n"
            "\n"
            "class WriteAgent:\n"
            "    def receive(self, message: object) -> None:\n"
            "        CACHE['x'] = message\n",
            encoding="utf-8",
        )
        assert analyze_paths([tmp_path], [RULES["R9"]()]) == []
        without = module.read_text(encoding="utf-8").replace(
            "  # repro-lint: disable=R9", ""
        )
        module.write_text(without, encoding="utf-8")
        assert len(analyze_paths([tmp_path], [RULES["R9"]()])) == 1


class TestProjectContext:
    """The symbol-table / call-graph substrate itself."""

    def _project(self, tmp_path: Path, files: dict[str, str]) -> ProjectContext:
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        project, errors = build_project([tmp_path])
        assert errors == []
        return project

    def test_alias_aware_import_resolution(self, tmp_path: Path) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/mod.py": (
                    "import numpy as np\n"
                    "from time import sleep as nap\n"
                    "import os.path\n"
                )
            },
        )
        imports = project.modules["repro.mod"].imports
        assert imports["np"] == "numpy"
        assert imports["nap"] == "time.sleep"
        assert imports["os"] == "os"

    def test_cross_module_call_edge(self, tmp_path: Path) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/a.py": (
                    "from repro.b import helper\n"
                    "\n"
                    "def caller() -> int:\n"
                    "    return helper()\n"
                ),
                "src/repro/b.py": "def helper() -> int:\n    return 1\n",
            },
        )
        assert "repro.b.helper" in project.callees("repro.a.caller")
        assert "repro.a.caller" in project.callers("repro.b.helper")

    def test_self_method_call_resolves_precisely(self, tmp_path: Path) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/c.py": (
                    "class Box:\n"
                    "    def outer(self) -> int:\n"
                    "        return self.inner()\n"
                    "\n"
                    "    def inner(self) -> int:\n"
                    "        return 2\n"
                )
            },
        )
        assert project.callees("repro.c.Box.outer") == frozenset(
            {"repro.c.Box.inner"}
        )

    def test_method_name_edges_are_conservative(self, tmp_path: Path) -> None:
        """``obj.deliver()`` on an unknown receiver reaches every project
        ``deliver`` — over-approximation, never under-approximation."""
        project = self._project(
            tmp_path,
            {
                "src/repro/d.py": (
                    "def kick(obj: object) -> None:\n"
                    "    obj.deliver()\n"
                    "\n"
                    "\n"
                    "class A:\n"
                    "    def deliver(self) -> None:\n"
                    "        pass\n"
                    "\n"
                    "\n"
                    "class B:\n"
                    "    def deliver(self) -> None:\n"
                    "        pass\n"
                )
            },
        )
        assert project.callees("repro.d.kick") == frozenset(
            {"repro.d.A.deliver", "repro.d.B.deliver"}
        )

    def test_reachability_is_transitive_and_inclusive(
        self, tmp_path: Path
    ) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/e.py": (
                    "def a() -> None:\n    b()\n"
                    "\n"
                    "def b() -> None:\n    c()\n"
                    "\n"
                    "def c() -> None:\n    pass\n"
                    "\n"
                    "def unrelated() -> None:\n    pass\n"
                )
            },
        )
        reachable = project.reachable_from(["repro.e.a"])
        assert reachable == {"repro.e.a", "repro.e.b", "repro.e.c"}
        feeding = project.reaching(["repro.e.c"])
        assert feeding == {"repro.e.a", "repro.e.b", "repro.e.c"}

    def test_traversal_stops_at_allowlisted_modules(self, tmp_path: Path) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/f.py": (
                    "from repro.exempt import stamp\n"
                    "\n"
                    "def entry() -> object:\n    return stamp()\n"
                ),
                "src/repro/exempt.py": (
                    "def stamp() -> object:\n    return leak()\n"
                    "\n"
                    "def leak() -> object:\n    return None\n"
                ),
            },
        )
        reachable = project.reachable_from(
            ["repro.f.entry"], stop=("repro.exempt",)
        )
        assert "repro.exempt.stamp" in reachable  # reached ...
        assert "repro.exempt.leak" not in reachable  # ... but not traversed

    def test_mutable_global_detection_kinds(self, tmp_path: Path) -> None:
        project = self._project(
            tmp_path,
            {
                "src/repro/g.py": (
                    "import numpy as np\n"
                    "from collections import deque\n"
                    "\n"
                    "ITEMS = []\n"
                    "TABLE: dict = {}\n"
                    "SEEN = set()\n"
                    "RING = deque()\n"
                    "GRID = np.zeros(4)\n"
                    "LIMIT = 3\n"
                    "NAMES = ('a', 'b')\n"
                )
            },
        )
        kinds = {
            g.name: g.kind for g in project.mutable_globals.values()
        }
        assert kinds == {
            "ITEMS": "list",
            "TABLE": "dict",
            "SEEN": "call:set",
            "RING": "call:deque",
            "GRID": "ndarray:zeros",
        }

    def test_parse_error_is_reported_not_fatal(self, tmp_path: Path) -> None:
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def oops(:\n", encoding="utf-8")
        project, errors = build_project([tmp_path])
        assert project.functions == {}
        assert len(errors) == 1
        assert errors[0].rule_id == "E000"

    def test_module_context_backref_is_set(self, tmp_path: Path) -> None:
        module = tmp_path / "src" / "repro" / "h.py"
        module.parent.mkdir(parents=True)
        module.write_text("def f() -> None:\n    pass\n", encoding="utf-8")
        context = build_context(module)
        project = ProjectContext([context])
        analyze = analyze_paths([tmp_path])
        del analyze, project
        # analyze_paths with project mode attaches the backref lazily; do
        # the same by hand and assert the invariant build_project keeps.
        built, _ = build_project([tmp_path])
        assert all(ctx.project is built for ctx in built.contexts)
