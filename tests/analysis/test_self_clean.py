"""The codebase is self-enforcing: the analyzer must pass on ``src/``.

This is the pytest twin of the CI gate ``python -m repro lint --strict src``:
any rule violation introduced anywhere in the package fails the suite with
the full human-readable report.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths, render_human

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_has_zero_findings() -> None:
    src = REPO_ROOT / "src"
    assert src.is_dir(), f"expected source tree at {src}"
    findings = analyze_paths([src])
    assert not findings, "\n" + render_human(findings)
