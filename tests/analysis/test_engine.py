"""Engine mechanics: suppressions, module mapping, reporters, baselines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_file,
    analyze_paths,
    apply_baseline,
    load_baseline,
    render_human,
    render_json,
    rules_for,
    write_baseline,
)
from repro.analysis.engine import equations_from_text, module_name
from repro.analysis.rules import RULES

VIOLATION = "def stalled(price: float) -> bool:\n    return price == 0.0\n"


def _write(tmp_path: Path, relpath: str, code: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code, encoding="utf-8")
    return target


class TestModuleName:
    def test_maps_src_layout(self) -> None:
        assert module_name(Path("src/repro/core/prices.py")) == "repro.core.prices"

    def test_init_maps_to_package(self) -> None:
        assert module_name(Path("src/repro/core/__init__.py")) == "repro.core"

    def test_outside_repro_is_unscoped(self) -> None:
        assert module_name(Path("somewhere/else.py")) == ""


class TestSuppression:
    def test_inline_disable_silences_finding(self, tmp_path: Path) -> None:
        code = (
            "def stalled(price: float) -> bool:\n"
            "    return price == 0.0  # repro-lint: disable=R2\n"
        )
        target = _write(tmp_path, "src/repro/core/x.py", code)
        assert analyze_file(target, [RULES["R2"]()], known_equations=None) == []

    def test_inline_disable_all(self, tmp_path: Path) -> None:
        code = (
            "def stalled(price: float) -> bool:\n"
            "    return price == 0.0  # repro-lint: disable=all\n"
        )
        target = _write(tmp_path, "src/repro/core/x.py", code)
        assert analyze_file(target, [RULES["R2"]()], known_equations=None) == []

    def test_file_level_disable(self, tmp_path: Path) -> None:
        code = "# repro-lint: disable-file=R2\n" + VIOLATION
        target = _write(tmp_path, "src/repro/core/x.py", code)
        assert analyze_file(target, [RULES["R2"]()], known_equations=None) == []

    def test_other_rule_ids_do_not_suppress(self, tmp_path: Path) -> None:
        code = (
            "def stalled(price: float) -> bool:\n"
            "    return price == 0.0  # repro-lint: disable=R5\n"
        )
        target = _write(tmp_path, "src/repro/core/x.py", code)
        assert len(analyze_file(target, [RULES["R2"]()], known_equations=None)) == 1


class TestEngine:
    def test_syntax_error_becomes_finding(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/broken.py", "def broken(:\n")
        findings = analyze_file(target, rules_for(None))
        assert len(findings) == 1
        assert findings[0].rule_id == "E000"

    def test_analyze_paths_walks_directories(self, tmp_path: Path) -> None:
        _write(tmp_path, "src/repro/core/a.py", VIOLATION)
        _write(tmp_path, "src/repro/core/b.py", VIOLATION)
        findings = analyze_paths([tmp_path / "src"], [RULES["R2"]()])
        assert len(findings) == 2
        assert [f.path for f in findings] == sorted(f.path for f in findings)

    def test_equation_ranges_expand(self) -> None:
        assert equations_from_text("covers eq. 4-5 and eq. 12") == frozenset(
            {4, 5, 12}
        )
        # en-dash ranges, as written in DESIGN.md
        assert equations_from_text("eq. 6–13") == frozenset(range(6, 14))

    def test_render_human_summarizes(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
        findings = analyze_file(target, [RULES["R2"]()], known_equations=None)
        report = render_human(findings)
        assert "1 finding (1 error, 0 warnings) in 1 file" in report
        assert render_human([]) == "no findings"

    def test_render_json_schema(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
        findings = analyze_file(target, [RULES["R2"]()], known_equations=None)
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["count"] == 1
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert set(payload["findings"][0]) == {
            "rule",
            "severity",
            "path",
            "line",
            "message",
        }

    def test_rules_for_rejects_unknown_ids(self) -> None:
        with pytest.raises(KeyError):
            rules_for(["R999"])


class TestBaseline:
    def test_roundtrip_subtracts_known_findings(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
        rule = RULES["R2"]()
        findings = analyze_file(target, [rule], known_equations=None)
        baseline_path = tmp_path / "baseline.json"
        assert write_baseline(findings, baseline_path) == 1

        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_new_findings_survive_baseline(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
        rule = RULES["R2"]()
        findings = analyze_file(target, [rule], known_equations=None)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)

        # A second, different violation appears in another function.
        target.write_text(
            VIOLATION + "\ndef drained(rate: float) -> bool:\n    return rate == 0.0\n",
            encoding="utf-8",
        )
        fresh = analyze_file(target, [rule], known_equations=None)
        remaining = apply_baseline(fresh, load_baseline(baseline_path))
        assert len(remaining) == 1
        assert "rate" in remaining[0].message

    def test_baseline_is_line_insensitive(self, tmp_path: Path) -> None:
        target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
        rule = RULES["R2"]()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            analyze_file(target, [rule], known_equations=None), baseline_path
        )

        # Unrelated lines added above shift the finding's line number.
        target.write_text("import math\n\n\n" + VIOLATION, encoding="utf-8")
        shifted = analyze_file(target, [rule], known_equations=None)
        assert apply_baseline(shifted, load_baseline(baseline_path)) == []

    def test_rejects_unknown_schema(self, tmp_path: Path) -> None:
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bogus)
