"""R9 fixture: a module-level mutable registry, defined here ..."""

SHARED_QUEUE: list = []
