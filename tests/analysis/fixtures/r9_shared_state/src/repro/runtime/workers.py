"""... and touched, cross-module, from two different agent classes.

``ProducerAgent.receive`` writes through a helper; ``DrainAgent.act``
reads directly.  Neither module alone shows the race — only the project
call graph connects both callback classes to ``registry.SHARED_QUEUE``.
"""

from repro.runtime.registry import SHARED_QUEUE


def enqueue(item: object) -> None:
    SHARED_QUEUE.append(item)


class ProducerAgent:
    def receive(self, message: object) -> None:
        enqueue(message)


class DrainAgent:
    def act(self, stamp: float) -> list:
        return list(SHARED_QUEUE)
