"""R11 fixture: unordered iteration on the message-scheduling path.

``_dispatch`` iterates a set-typed attribute and a ``glob`` listing; both
orders depend on process state (hash seed, filesystem), so the scheduled
message order — and therefore the emitted trace — would differ between
bit-identical runs.
"""

import glob


class FanoutRuntime:
    def __init__(self, peers: set[str]) -> None:
        self._peers = set(peers)

    def _dispatch(self, payload: object) -> None:
        for peer in self._peers:
            self._send(peer, payload)
        for capture in glob.glob("captures/*.jsonl"):
            self._send(capture, payload)

    def _send(self, address: str, payload: object) -> None:
        self._wire = (address, payload)
