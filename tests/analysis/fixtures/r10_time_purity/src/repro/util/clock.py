"""R10 fixture: an innocent-looking helper module hiding a wall-clock read."""

import time


def wall_stamp() -> float:
    return time.time()
