"""R10 fixture: a runtime delivery path reaching the wall clock two calls away."""

from repro.util.clock import wall_stamp


def annotate(message: object) -> tuple:
    return (message, wall_stamp())


class TickRuntime:
    def _handle_deliver(self, message: object) -> None:
        self._last = annotate(message)
