"""R12 fixture: dtype drift and an in-place write through a view."""

import numpy as np


def normalize(matrix: np.ndarray) -> np.ndarray:
    flat = matrix.ravel()
    flat /= flat.sum()
    return flat


def compact(matrix: np.ndarray) -> np.ndarray:
    return np.asarray(matrix, dtype=np.float32)
