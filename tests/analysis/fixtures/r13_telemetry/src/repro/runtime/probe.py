"""R13 fixture: event allocated before the enabled guard."""

from repro.obs.events import IterationEvent


class Stepper:
    def step(self, telemetry: object, utility: float) -> None:
        event = IterationEvent(iteration=1, utility=utility, t_ns=0, at=0.0)
        if telemetry.enabled:
            telemetry.emit(event)
