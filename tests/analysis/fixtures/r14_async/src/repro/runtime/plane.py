"""R14 fixture: a dropped coroutine and a blocking sleep on the control plane."""

import time


async def checkpoint() -> None:
    return None


class ControlPlane:
    async def tick(self) -> None:
        await checkpoint()

    async def run(self) -> None:
        self.tick()
        time.sleep(0.05)
