"""Per-rule fixtures: every registered rule must fire on a violating
snippet and stay quiet on a clean one.

The tests are parametrized over :data:`repro.analysis.rules.RULES`, so
registering a new rule without adding fixtures here fails the suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.analysis import RULES, Severity, analyze_file, render_human, render_json
from repro.analysis.engine import equations_from_text


@dataclass(frozen=True)
class RuleFixture:
    """A violating and a clean snippet for one rule, at a scoped path."""

    relpath: str
    violating: str
    clean: str
    design: str | None = None


FIXTURES: dict[str, RuleFixture] = {
    "R1": RuleFixture(
        relpath="src/repro/events/sampler.py",
        violating=(
            "import random\n"
            "\n"
            "def jitter() -> float:\n"
            "    return random.random()\n"
        ),
        clean=(
            "import random\n"
            "\n"
            "def jitter(seed: int) -> float:\n"
            "    return random.Random(seed).random()\n"
        ),
    ),
    "R2": RuleFixture(
        relpath="src/repro/core/helpers.py",
        violating=(
            "def stalled(price: float) -> bool:\n"
            "    return price == 0.0\n"
        ),
        clean=(
            "from repro.utility.tolerance import is_zero\n"
            "\n"
            "def stalled(price: float) -> bool:\n"
            "    return is_zero(price)\n"
        ),
    ),
    "R3": RuleFixture(
        relpath="src/repro/core/prices.py",
        violating=(
            "class Controller:\n"
            "    def update(self, gradient: float) -> float:\n"
            "        self._price = self._price + gradient\n"
            "        return self._price\n"
        ),
        clean=(
            "class Controller:\n"
            "    def __init__(self, initial: float) -> None:\n"
            "        if initial < 0.0:\n"
            "            raise ValueError('negative price')\n"
            "        self._price = initial\n"
            "\n"
            "    def update(self, gradient: float) -> float:\n"
            "        self._price = max(self._price + gradient, 0.0)\n"
            "        return self._price\n"
        ),
    ),
    "R4": RuleFixture(
        relpath="src/repro/runtime/peers.py",
        violating=(
            "class NosyAgent:\n"
            "    def act(self, peer: object) -> float:\n"
            "        return peer._price\n"
        ),
        clean=(
            "class PoliteAgent:\n"
            "    def __init__(self) -> None:\n"
            "        self._price = 0.0\n"
            "\n"
            "    def receive(self, message: object) -> None:\n"
            "        self._price = getattr(message, 'price', 0.0)\n"
        ),
    ),
    "R5": RuleFixture(
        relpath="src/repro/core/mutator.py",
        violating=(
            "def rescale(problem: object) -> None:\n"
            "    problem.flows['f1'] = None\n"
        ),
        clean=(
            "def snapshot(problem: object) -> dict:\n"
            "    return dict(problem.flows)\n"
        ),
    ),
    "R6": RuleFixture(
        relpath="src/repro/model/api.py",
        violating=(
            "def solve(problem):\n"
            "    return problem\n"
        ),
        clean=(
            "def solve(problem: object) -> object:\n"
            "    return problem\n"
        ),
    ),
    "R7": RuleFixture(
        relpath="src/repro/runtime/failures.py",
        violating=(
            "def deliver(send: object) -> None:\n"
            "    try:\n"
            "        send()\n"
            "    except:\n"
            "        pass\n"
        ),
        clean=(
            "def deliver(send: object, record: object) -> None:\n"
            "    try:\n"
            "        send()\n"
            "    except ValueError as error:\n"
            "        record(error)\n"
        ),
    ),
    "R8": RuleFixture(
        relpath="src/repro/core/doc.py",
        violating='"""Implements the projection of eq. 99."""\n',
        clean='"""Implements the projection of eq. 12."""\n',
        design="The design covers eq. 12 and eq. 13 only.",
    ),
    "R9": RuleFixture(
        relpath="src/repro/runtime/registry.py",
        violating=(
            "PENDING: dict = {}\n"
            "\n"
            "\n"
            "class IngressAgent:\n"
            "    def receive(self, message: object) -> None:\n"
            "        PENDING[str(message)] = message\n"
            "\n"
            "\n"
            "class EgressAgent:\n"
            "    def act(self, stamp: float) -> list:\n"
            "        return list(PENDING)\n"
        ),
        clean=(
            "class IngressAgent:\n"
            "    def __init__(self) -> None:\n"
            "        self._pending: dict = {}\n"
            "\n"
            "    def receive(self, message: object) -> None:\n"
            "        self._pending[str(message)] = message\n"
        ),
    ),
    "R10": RuleFixture(
        relpath="src/repro/runtime/clocked.py",
        violating=(
            "import time\n"
            "\n"
            "\n"
            "def stamp() -> float:\n"
            "    return time.time()\n"
            "\n"
            "\n"
            "class TickRuntime:\n"
            "    def _handle_deliver(self, message: object) -> None:\n"
            "        self._last = stamp()\n"
        ),
        clean=(
            "from repro.obs.events import now_ns\n"
            "\n"
            "\n"
            "class TickRuntime:\n"
            "    def _handle_deliver(self, message: object) -> None:\n"
            "        self._last = now_ns()\n"
        ),
    ),
    "R11": RuleFixture(
        relpath="src/repro/runtime/dispatcher.py",
        violating=(
            "class QueueRuntime:\n"
            "    def _dispatch(self, pending: set[str]) -> None:\n"
            "        for address in pending:\n"
            "            self._send(address)\n"
            "\n"
            "    def _send(self, address: str) -> None:\n"
            "        self._out = address\n"
        ),
        clean=(
            "class QueueRuntime:\n"
            "    def _dispatch(self, pending: set[str]) -> None:\n"
            "        for address in sorted(pending):\n"
            "            self._send(address)\n"
            "\n"
            "    def _send(self, address: str) -> None:\n"
            "        self._out = address\n"
        ),
    ),
    "R12": RuleFixture(
        relpath="src/repro/core/kernels.py",
        violating=(
            "import numpy as np\n"
            "\n"
            "\n"
            "def halve(matrix: np.ndarray) -> np.ndarray:\n"
            "    flat = matrix.ravel()\n"
            "    flat *= 0.5\n"
            "    return flat.astype(np.float32)\n"
        ),
        clean=(
            "import numpy as np\n"
            "\n"
            "\n"
            "def halve(matrix: np.ndarray) -> np.ndarray:\n"
            "    return np.asarray(matrix * 0.5, dtype=np.float64)\n"
        ),
    ),
    "R13": RuleFixture(
        relpath="src/repro/runtime/ticker.py",
        violating=(
            "from repro.obs.events import IterationEvent\n"
            "\n"
            "\n"
            "class Loop:\n"
            "    def step(self, telemetry: object) -> None:\n"
            "        event = IterationEvent(iteration=1, utility=0.0)\n"
            "        if telemetry.enabled:\n"
            "            telemetry.emit(event)\n"
        ),
        clean=(
            "from repro.obs.events import IterationEvent\n"
            "\n"
            "\n"
            "class Loop:\n"
            "    def step(self, telemetry: object) -> None:\n"
            "        if telemetry.enabled:\n"
            "            telemetry.emit(IterationEvent(iteration=1, utility=0.0))\n"
        ),
    ),
    "R14": RuleFixture(
        relpath="src/repro/runtime/service.py",
        violating=(
            "import time\n"
            "\n"
            "\n"
            "async def flush() -> None:\n"
            "    return None\n"
            "\n"
            "\n"
            "async def control_loop() -> None:\n"
            "    flush()\n"
            "    time.sleep(0.1)\n"
        ),
        clean=(
            "import asyncio\n"
            "\n"
            "\n"
            "async def flush() -> None:\n"
            "    return None\n"
            "\n"
            "\n"
            "async def control_loop() -> None:\n"
            "    await flush()\n"
            "    await asyncio.sleep(0.1)\n"
        ),
    ),
}


def _run_rule(tmp_path: Path, rule_id: str, code: str) -> list:
    fixture = FIXTURES[rule_id]
    target = tmp_path / fixture.relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code, encoding="utf-8")
    known = (
        equations_from_text(fixture.design) if fixture.design is not None else None
    )
    return analyze_file(target, [RULES[rule_id]()], known_equations=known)


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_every_rule_ships_fixtures(rule_id: str) -> None:
    assert rule_id in FIXTURES, (
        f"rule {rule_id} is registered but has no fixtures; add a violating "
        "and a clean snippet to tests/analysis/test_rules.py"
    )


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_violating_fixture_fires(rule_id: str, tmp_path: Path) -> None:
    findings = _run_rule(tmp_path, rule_id, FIXTURES[rule_id].violating)
    assert findings, f"rule {rule_id} did not fire on its violating fixture"
    assert all(f.rule_id == rule_id for f in findings)
    for finding in findings:
        assert finding.path.endswith(FIXTURES[rule_id].relpath.rsplit("/", 1)[-1])
        assert finding.line >= 1
        assert isinstance(finding.severity, Severity)
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_clean_fixture_is_quiet(rule_id: str, tmp_path: Path) -> None:
    findings = _run_rule(tmp_path, rule_id, FIXTURES[rule_id].clean)
    assert findings == [], (
        f"rule {rule_id} fired on its clean fixture:\n{render_human(findings)}"
    )


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_reports_carry_rule_file_line_severity(rule_id: str, tmp_path: Path) -> None:
    """Both reporters surface rule id, file, line and severity."""
    findings = _run_rule(tmp_path, rule_id, FIXTURES[rule_id].violating)
    finding = findings[0]

    human = render_human(findings)
    assert f"{finding.path}:{finding.line}: {rule_id} {finding.severity}" in human

    payload = json.loads(render_json(findings))
    entry = payload["findings"][0]
    assert entry["rule"] == rule_id
    assert entry["path"] == finding.path
    assert entry["line"] == finding.line
    assert entry["severity"] in {"error", "warning"}


class TestR1CoversRuntimeFaults:
    """The fault-injection subsystem is all about randomness — plan
    generation, loss draws, latency storms — and must obey R1's seeded
    discipline: unlike :mod:`repro.workloads.generator` it is *not*
    exempt, and the shipping module must analyze clean."""

    REPO_ROOT = Path(__file__).resolve().parents[2]

    def test_unseeded_fault_plan_generation_fires(self, tmp_path: Path) -> None:
        target = tmp_path / "src/repro/runtime/faults.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import random\n"
            "\n"
            "def crash_times(rate: float) -> list[float]:\n"
            "    return [random.expovariate(rate) for _ in range(3)]\n",
            encoding="utf-8",
        )
        findings = analyze_file(target, [RULES["R1"]()])
        assert findings, "R1 must cover repro.runtime.faults (no exemption)"
        assert all(finding.rule_id == "R1" for finding in findings)

    def test_shipping_fault_module_is_clean(self) -> None:
        module = self.REPO_ROOT / "src" / "repro" / "runtime" / "faults.py"
        assert module.is_file()
        findings = analyze_file(module, [RULES["R1"]()])
        assert findings == [], "\n" + render_human(findings)


class TestRulesCoverCausalAndReplay:
    """PR 5 pulled ``repro.obs.causal``/``repro.obs.replay`` into the
    strict lane: R1's seeded-randomness discipline applies (span ids must
    be deterministic — a tracer drawing entropy breaks replay), and R6's
    full-annotation bar applies because both modules back CLI contracts
    and run under mypy --strict in CI."""

    REPO_ROOT = Path(__file__).resolve().parents[2]
    MODULES = ("causal.py", "replay.py")

    def test_unseeded_randomness_in_causal_layer_fires_r1(
        self, tmp_path: Path
    ) -> None:
        target = tmp_path / "src/repro/obs/causal.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import random\n"
            "\n"
            "def allocate_span() -> str:\n"
            "    return f's{random.getrandbits(32):08x}'\n",
            encoding="utf-8",
        )
        findings = analyze_file(target, [RULES["R1"]()])
        assert findings, "R1 must cover repro.obs.causal (no exemption)"
        assert all(finding.rule_id == "R1" for finding in findings)

    def test_unannotated_public_in_replay_layer_fires_r6(
        self, tmp_path: Path
    ) -> None:
        target = tmp_path / "src/repro/obs/replay.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "def seek(index):\n"
            "    return index\n",
            encoding="utf-8",
        )
        findings = analyze_file(target, [RULES["R6"]()])
        assert findings, "R6 must scope repro.obs.replay"
        assert all(finding.rule_id == "R6" for finding in findings)
        assert "seek()" in findings[0].message

    @pytest.mark.parametrize("filename", MODULES)
    def test_shipping_modules_are_clean_under_r1_and_r6(
        self, filename: str
    ) -> None:
        module = self.REPO_ROOT / "src" / "repro" / "obs" / filename
        assert module.is_file()
        findings = analyze_file(module, [RULES["R1"](), RULES["R6"]()])
        assert findings == [], "\n" + render_human(findings)
