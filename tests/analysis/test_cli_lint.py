"""CLI integration for ``python -m repro lint``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

VIOLATION = "def stalled(price: float) -> bool:\n    return price == 0.0\n"
#: Missing annotations in repro.model -> R6, which is warning severity.
WARNING_ONLY = "def solve(problem):\n    return problem\n"


def _write(tmp_path: Path, relpath: str, code: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code, encoding="utf-8")
    return target


def test_clean_tree_exits_zero(tmp_path, capsys):
    _write(tmp_path, "src/repro/core/x.py", "VALUE = 1\n")
    assert main(["lint", str(tmp_path / "src")]) == 0
    assert "no findings" in capsys.readouterr().out


def test_error_finding_exits_nonzero(tmp_path, capsys):
    target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "R2 error" in out


def test_warnings_fail_only_under_strict(tmp_path, capsys):
    target = _write(tmp_path, "src/repro/model/api.py", WARNING_ONLY)
    assert main(["lint", str(target)]) == 0
    assert main(["lint", "--strict", str(target)]) == 1
    out = capsys.readouterr().out
    assert "R6 warning" in out


def test_json_format(tmp_path, capsys):
    target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
    assert main(["lint", "--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "R2"


def test_rule_selection(tmp_path, capsys):
    target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
    assert main(["lint", "--rules", "R5", str(target)]) == 0
    assert main(["lint", "--rules", "r2", str(target)]) == 1
    capsys.readouterr()


def test_unknown_rule_id_is_a_usage_error(tmp_path):
    target = _write(tmp_path, "src/repro/core/x.py", "VALUE = 1\n")
    with pytest.raises(SystemExit):
        main(["lint", "--rules", "R999", str(target)])


def test_baseline_roundtrip(tmp_path, capsys):
    target = _write(tmp_path, "src/repro/core/x.py", VIOLATION)
    baseline = tmp_path / "lint-baseline.json"

    assert main(["lint", "--write-baseline", str(baseline), str(target)]) == 0
    assert baseline.is_file()
    capsys.readouterr()

    # Baselined findings no longer fail, even under --strict.
    assert main(["lint", "--strict", "--baseline", str(baseline), str(target)]) == 0
    assert "no findings" in capsys.readouterr().out

    # ... but a fresh violation does.
    target.write_text(
        VIOLATION + "\ndef drained(rate: float) -> bool:\n    return rate == 0.0\n",
        encoding="utf-8",
    )
    assert main(["lint", "--strict", "--baseline", str(baseline), str(target)]) == 1


def test_missing_baseline_is_a_usage_error(tmp_path):
    target = _write(tmp_path, "src/repro/core/x.py", "VALUE = 1\n")
    with pytest.raises(SystemExit):
        main(["lint", "--baseline", str(tmp_path / "nope.json"), str(target)])


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
        assert rule_id in out
