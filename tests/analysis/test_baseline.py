"""Tests for the findings-baseline machinery (``repro.analysis.baseline``).

Covers the satellite's three asks: snapshot round-trips, stale-entry
pruning, and how a baseline composes with ``repro lint --strict`` at the
CLI boundary.
"""

import json
from collections import Counter

import pytest

from repro.analysis import (
    Finding,
    Severity,
    apply_baseline,
    load_baseline,
    prune_baseline,
    stale_entries,
    write_baseline,
)
from repro.cli import main


def finding(rule="R2", path="src/repro/core/x.py", line=3, message="bad"):
    return Finding(
        rule_id=rule,
        severity=Severity.ERROR,
        path=path,
        line=line,
        message=message,
    )


class TestRoundTrip:
    def test_write_then_load_recovers_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [finding(), finding(), finding(rule="R3", message="other")]
        assert write_baseline(findings, path) == 3
        loaded = load_baseline(path)
        assert loaded[findings[0].fingerprint()] == 2
        assert loaded[findings[2].fingerprint()] == 1
        assert sum(loaded.values()) == 3

    def test_snapshot_is_line_insensitive(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([finding(line=3)], path)
        # The same violation moved 40 lines down is still baselined.
        assert apply_baseline([finding(line=43)], load_baseline(path)) == []

    def test_snapshot_is_deterministic_bytes(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        findings = [finding(rule=r) for r in ("R3", "R1", "R2")]
        write_baseline(findings, first)
        write_baseline(list(reversed(findings)), second)
        assert first.read_bytes() == second.read_bytes()

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError, match="unsupported baseline format"):
            load_baseline(path)

    def test_apply_counts_per_fingerprint(self):
        baseline = Counter({finding().fingerprint(): 1})
        kept = apply_baseline([finding(line=1), finding(line=9)], baseline)
        # Two identical violations, budget of one: one stays visible.
        assert len(kept) == 1


class TestStalePruning:
    def test_no_stale_entries_on_exact_match(self):
        baseline = Counter({finding().fingerprint(): 1})
        assert stale_entries([finding()], baseline) == Counter()

    def test_fixed_violation_becomes_stale(self):
        baseline = Counter(
            {finding().fingerprint(): 2, finding(rule="R3").fingerprint(): 1}
        )
        # One of the two R2 instances was fixed; the R3 one remains.
        stale = stale_entries([finding(), finding(rule="R3")], baseline)
        assert stale == Counter({finding().fingerprint(): 1})

    def test_prune_rewrites_only_when_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([finding()], path)
        before = path.read_bytes()
        assert prune_baseline([finding()], path) == 0
        assert path.read_bytes() == before  # untouched on a clean run

    def test_prune_drops_fixed_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([finding(), finding(), finding(rule="R3")], path)
        assert prune_baseline([finding()], path) == 2
        loaded = load_baseline(path)
        assert loaded == Counter({finding().fingerprint(): 1})

    def test_prune_then_apply_shelters_nothing_extra(self, tmp_path):
        # The ratchet property: after pruning, a regression of the fixed
        # violation is reported again instead of consuming stale budget.
        path = tmp_path / "baseline.json"
        write_baseline([finding()], path)
        prune_baseline([], path)  # violation fixed -> entry pruned
        regressed = [finding(line=77)]
        assert apply_baseline(regressed, load_baseline(path)) == regressed


class TestCliStrictInteraction:
    @pytest.fixture()
    def dirty_tree(self, tmp_path):
        """A file with one R2 violation (float == on a rate)."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "knob.py").write_text(
            '"""Module docstring."""\n\n'
            "def is_clamped(rate: float) -> bool:\n"
            '    """Docstring."""\n'
            "    return rate == 0.0\n"
        )
        return tmp_path

    def _lint(self, *argv):
        try:
            return main(list(argv))
        except SystemExit as error:  # argparse or explicit exit paths
            return int(error.code or 0)

    def test_strict_fails_then_baseline_absorbs(self, dirty_tree, capsys):
        target = str(dirty_tree / "src")
        assert self._lint("lint", "--strict", target) == 1
        baseline = str(dirty_tree / "baseline.json")
        assert self._lint("lint", target, "--write-baseline", baseline) == 0
        # Same violation + baseline: strict mode passes again.
        assert self._lint("lint", "--strict", target, "--baseline", baseline) == 0
        capsys.readouterr()

    def test_stale_baseline_noted_on_stderr(self, dirty_tree, capsys):
        target = str(dirty_tree / "src")
        baseline = str(dirty_tree / "baseline.json")
        self._lint("lint", target, "--write-baseline", baseline)
        # Fix the violation out from under the baseline.
        knob = dirty_tree / "src" / "repro" / "core" / "knob.py"
        knob.write_text(
            '"""Module docstring."""\n\n'
            "from repro.utility.tolerance import is_zero\n\n"
            "def is_clamped(rate: float) -> bool:\n"
            '    """Docstring."""\n'
            "    return is_zero(rate)\n"
        )
        assert self._lint("lint", "--strict", target, "--baseline", baseline) == 0
        captured = capsys.readouterr()
        assert "stale baseline" in captured.err

    def test_missing_baseline_file_is_an_error(self, dirty_tree):
        target = str(dirty_tree / "src")
        with pytest.raises(SystemExit, match="baseline file not found"):
            main(["lint", target, "--baseline", str(dirty_tree / "nope.json")])
