"""Smoke tests: the example scripts run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: The faster examples run in CI on every change; the slower two
#: (trade_data drives a 125k-delivery simulation, autonomic_recovery runs
#: a 120-tick closed loop) are marked slow but still exercised.
FAST = [
    "quickstart.py",
    "scaling_study.py",
    "distributed_deployment.py",
    "telemetry_dashboard.py",
]
SLOW = ["latest_price.py", "trade_data.py", "autonomic_recovery.py"]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("name", SLOW)
def test_slow_examples_run(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_paper_scale_utility():
    result = run_example("quickstart.py")
    assert "1,328," in result.stdout  # within the paper's utility regime
    assert "Feasible:       True" in result.stdout
