"""Figure 2: adaptive gamma vs fixed gamma.

Expected shape (paper section 4.2): the adaptive schedule converges faster
than the fixed ones while keeping fluctuations small.
"""

from conftest import DEFAULT_LRGP_ITERATIONS, record_result

from repro.core.convergence import iterations_until_convergence
from repro.experiments.figures import figure2_adaptive_gamma
from repro.experiments.reporting import render_ascii_chart, render_series_rows


def test_figure2_adaptive_gamma(benchmark):
    figure = benchmark.pedantic(
        figure2_adaptive_gamma,
        kwargs={"iterations": DEFAULT_LRGP_ITERATIONS},
        rounds=1,
        iterations=1,
    )
    convergence_note = "\n".join(
        f"  {series.label}: stable by iteration "
        f"{iterations_until_convergence(list(series.ys))}"
        for series in figure.series
    )
    text = (
        render_ascii_chart(figure)
        + "\n\n" + render_series_rows(figure, every=10)
        + "\n\nconvergence (0.1% amplitude):\n" + convergence_note
    )
    record_result("figure2_adaptive_gamma", text)
