"""Ablation B: consumer admission strategy (section 3.2's greedy choice).

Expected shape: greedy benefit/cost admission clearly beats FIFO, random
and proportional fair-share fills — the ordering is where the utility comes
from, not just the budget accounting.
"""

from conftest import DEFAULT_LRGP_ITERATIONS, record_result

from repro.experiments.ablations import ablation_admission
from repro.experiments.reporting import render_table


def test_ablation_admission(benchmark):
    table = benchmark.pedantic(
        ablation_admission,
        kwargs={"iterations": DEFAULT_LRGP_ITERATIONS},
        rounds=1,
        iterations=1,
    )
    record_result("ablation_admission", render_table(table))
    utilities = [float(row[1].replace(",", "")) for row in table.rows]
    assert utilities[0] == max(utilities)
