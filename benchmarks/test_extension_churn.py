"""Extension E5: LRGP tracking capacity and membership churn.

Expected shape: the utility steps down at each adverse event (capacity
halved, high-rank flow leaves), re-stabilizes within tens of iterations
each time (adaptive gamma), and steps back up when capacity is restored.
"""

from conftest import record_result

from repro.experiments.extensions import extension_capacity_churn
from repro.experiments.reporting import render_ascii_chart, render_series_rows


def test_extension_capacity_churn(benchmark):
    figure = benchmark.pedantic(extension_capacity_churn, rounds=1, iterations=1)
    text = render_ascii_chart(figure) + "\n\n" + render_series_rows(figure, every=15)
    record_result("extension_churn", text)
    utilities = figure.series[0].ys
    assert utilities[134] < 0.95 * utilities[78]   # capacity loss hurt
    assert utilities[194] < 0.6 * utilities[138]   # flow departure hurt
    assert utilities[299] > utilities[198]         # restoration recovered
