"""Extension E6: LRGP vs centralized block-coordinate ascent.

Expected shape: alternation seeded with LRGP's solution cannot improve it
(fixpoint certificate); cold-start and even multistart alternation land in
worse partial optima on the base workload — the benefit/cost price linkage
is doing real optimization work, not just coordination.
"""

import pytest
from conftest import record_result

from repro.experiments.extensions import extension_coordinate
from repro.experiments.reporting import render_table


def test_extension_coordinate(benchmark):
    table = benchmark.pedantic(extension_coordinate, rounds=1, iterations=1)
    record_result("extension_coordinate", render_table(table))
    for row in table.rows:
        lrgp = float(row[1].replace(",", ""))
        cold = float(row[2].replace(",", ""))
        multi = float(row[3].replace(",", ""))
        seeded = float(row[4].replace(",", ""))
        assert lrgp >= 0.99 * cold
        assert lrgp >= 0.99 * multi
        assert seeded == pytest.approx(lrgp, rel=0.005)  # fixpoint
