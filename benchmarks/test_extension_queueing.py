"""Extension E4: delivery latency vs node utilization.

Expected: latency grows steeply as utilization approaches 1 and diverges
beyond it — the overload behaviour the node constraint (eq. 5), and hence
admission control, exists to prevent.
"""

from conftest import record_result

from repro.experiments.extensions import extension_queueing_latency
from repro.experiments.reporting import render_table


def test_extension_queueing_latency(benchmark):
    table = benchmark.pedantic(extension_queueing_latency, rounds=1, iterations=1)
    record_result("extension_queueing", render_table(table))
    latencies = [float(row[2]) for row in table.rows]
    # Monotone in utilization, and past-saturation latency dwarfs the
    # half-load latency.
    assert latencies == sorted(latencies)
    assert latencies[-1] > 20 * latencies[0]
