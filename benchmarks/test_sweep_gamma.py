"""Gamma-sensitivity sweep: the landscape behind figure 1.

Expected shape: convergence accelerates as gamma grows from 0.001, then
residual oscillation takes over well before gamma = 1 — the tradeoff the
adaptive heuristic (and its [0.001, 0.1] clamp) navigates.
"""

import math

from conftest import record_result

from repro.experiments.reporting import render_table
from repro.experiments.sweeps import gamma_sensitivity


def test_sweep_gamma(benchmark):
    result = benchmark.pedantic(gamma_sensitivity, rounds=1, iterations=1)
    record_result("sweep_gamma", render_table(result.table(decimals=5)))

    by_gamma = {point.value: point.outcomes for point in result.points}
    # gamma = 1: oscillates with large amplitude, never converges.
    assert math.isnan(by_gamma[1.0]["iterations to converge"])
    assert by_gamma[1.0]["tail amplitude"] > 0.05
    # The sweet spot (well inside the paper's clamp) converges at the
    # strict 0.1% criterion...
    for gamma in (0.05, 0.02, 0.01, 0.005):
        assert not math.isnan(by_gamma[gamma]["iterations to converge"])
    # ...larger gammas keep a residual oscillation above it (figure 1's
    # inset: larger gamma = larger fluctuations)...
    assert by_gamma[0.1]["tail amplitude"] > by_gamma[0.01]["tail amplitude"]
    # ...and the smallest gamma is still far from equilibrium at 400 iters.
    assert math.isnan(by_gamma[0.001]["iterations to converge"])
