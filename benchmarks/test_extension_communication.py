"""Extension E7: communication cost of the distributed protocol.

Expected shape: messages per round grow linearly with flow-node
incidences, at exactly 3 messages per incidence (rate down, price +
populations back) — constant per-edge overhead regardless of scale.
"""

import pytest
from conftest import record_result

from repro.experiments.extensions import extension_communication
from repro.experiments.reporting import render_table


def test_extension_communication(benchmark):
    table = benchmark.pedantic(extension_communication, rounds=1, iterations=1)
    record_result("extension_communication", render_table(table))
    for row in table.rows:
        assert float(row[4]) == pytest.approx(3.0, abs=0.01), row[0]
