"""Table 3: convergence and quality as the class utility shape varies.

Expected shape (paper section 4.5): LRGP beats SA on every shape; the
number of iterations until convergence grows as the exponent approaches 1;
LRGP's utilities match the paper's LRGP column within 1%.
"""

import pytest
from conftest import DEFAULT_LRGP_ITERATIONS, DEFAULT_SA_STEPS, record_result

from repro.experiments.reporting import render_table
from repro.experiments.tables import table3_utility_shapes

PAPER_LRGP_UTILITIES = {
    "rank * log(1+r)": 1_328_821,
    "rank * r^0.25": 926_185,
    "rank * r^0.5": 2_003_225,
    "rank * r^0.75": 4_735_044,
}


def test_table3_utility_shapes(benchmark):
    table = benchmark.pedantic(
        table3_utility_shapes,
        kwargs={
            "sa_steps": DEFAULT_SA_STEPS,
            "lrgp_iterations": DEFAULT_LRGP_ITERATIONS,
        },
        rounds=1,
        iterations=1,
    )
    record_result("table3_utility_shapes", render_table(table))

    iterations = []
    for row in table.rows:
        label = row[0]
        sa_utility = float(row[4].replace(",", ""))
        lrgp_utility = float(row[6].replace(",", ""))
        assert lrgp_utility > sa_utility, label
        assert lrgp_utility == pytest.approx(
            PAPER_LRGP_UTILITIES[label], rel=0.01
        ), label
        iterations.append(int(row[5]))
    # Convergence slows as the exponent rises (paper: 23 -> 28 -> 39).
    assert iterations[1] <= iterations[2] <= iterations[3]
