"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and both
prints the rendered result and archives it under ``benchmarks/results/``
so a run leaves a complete, diffable record.

Budgets: simulated-annealing step counts default to a laptop-scale budget
and can be raised to the paper's 10^8 via the ``REPRO_SA_STEPS`` environment
variable (expect hours, as the paper reports 23-357 minutes per workload).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Default SA budget for benchmark runs; the paper used 10**8.
DEFAULT_SA_STEPS = int(os.environ.get("REPRO_SA_STEPS", 500_000))
#: Default LRGP iteration budget (the paper plots 250).
DEFAULT_LRGP_ITERATIONS = int(os.environ.get("REPRO_LRGP_ITERS", 250))


def record_result(name: str, text: str) -> None:
    """Print a rendered experiment and archive it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
