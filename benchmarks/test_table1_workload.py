"""Table 1: the base workload specification.

Table 1 is an input, not a result; the benchmark times workload
construction and prints the specification for comparison with the paper.
"""

from conftest import record_result

from repro.experiments.reporting import render_table
from repro.experiments.tables import table1_workload
from repro.workloads.base import base_workload


def test_table1_workload(benchmark):
    problem = benchmark(base_workload)
    assert len(problem.classes) == 20
    record_result("table1_workload", render_table(table1_workload()))
