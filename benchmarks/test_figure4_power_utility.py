"""Figure 4: global utility under the rank * r^0.75 class utility.

Expected shape (paper sections 4.5): the steep exponent converges more
slowly than log (Table 3: 39 vs 21 iterations) to a plateau near 4.74M.
"""

from conftest import DEFAULT_LRGP_ITERATIONS, record_result

from repro.core.convergence import iterations_until_convergence
from repro.experiments.figures import figure4_power_utility
from repro.experiments.reporting import render_ascii_chart, render_series_rows


def test_figure4_power_utility(benchmark):
    figure = benchmark.pedantic(
        figure4_power_utility,
        kwargs={"iterations": DEFAULT_LRGP_ITERATIONS},
        rounds=1,
        iterations=1,
    )
    stable = iterations_until_convergence(list(figure.series[0].ys))
    text = (
        render_ascii_chart(figure)
        + "\n\n" + render_series_rows(figure, every=10)
        + f"\n\nstable by iteration {stable} (paper: 39); "
        f"final utility {figure.series[0].ys[-1]:,.0f} (paper: 4,735,044)"
    )
    record_result("figure4_power_utility", text)
