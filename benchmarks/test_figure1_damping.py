"""Figure 1: the effect of damping (fixed gamma in {1, 0.1, 0.01}).

Expected shape (paper section 4.2): gamma=1 oscillates with large
amplitude; gamma=0.1 stabilizes within ~10 iterations; gamma=0.01 takes
~100 iterations.
"""

from conftest import DEFAULT_LRGP_ITERATIONS, record_result

from repro.experiments.figures import figure1_damping
from repro.experiments.reporting import render_ascii_chart, render_series_rows


def test_figure1_damping(benchmark):
    figure = benchmark.pedantic(
        figure1_damping,
        kwargs={"iterations": DEFAULT_LRGP_ITERATIONS},
        rounds=1,
        iterations=1,
    )
    text = render_ascii_chart(figure) + "\n\n" + render_series_rows(figure, every=10)
    record_result("figure1_damping", text)
    assert len(figure.series) == 3
