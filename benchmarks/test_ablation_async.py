"""Ablation C: synchronous vs asynchronous LRGP (section 3.5).

Expected shape: the asynchronous deployment reaches essentially the
synchronous utility even under latency and message loss; price averaging
(Low & Lapsley) keeps it stable.
"""

import pytest
from conftest import record_result

from repro.experiments.ablations import ablation_asynchrony
from repro.experiments.reporting import render_table


def test_ablation_async(benchmark):
    table = benchmark.pedantic(
        ablation_asynchrony, kwargs={"duration": 250.0}, rounds=1, iterations=1
    )
    record_result("ablation_async", render_table(table))
    utilities = [float(row[1].replace(",", "")) for row in table.rows]
    sync = utilities[0]
    for value in utilities[1:]:
        assert value == pytest.approx(sync, rel=0.05)
