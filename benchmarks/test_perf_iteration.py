"""Micro-benchmarks: the cost of one LRGP iteration as the system grows.

Section 4.3 argues iteration *count* is flat with scale; these benchmarks
measure the other half of the story — per-iteration compute, which grows
with the number of flows, classes and nodes (each iteration touches every
flow source and every consumer node once).
"""

import pytest

from repro.core.lrgp import LRGP, LRGPConfig
from repro.workloads.scaling import scale_consumer_nodes, scale_flows

SCALES = [
    ("base (6f/3c)", lambda: scale_flows(1)),
    ("4x flows (24f/12c)", lambda: scale_flows(4)),
    ("8x c-nodes (6f/24c)", lambda: scale_consumer_nodes(8)),
]


@pytest.mark.parametrize("label,build", SCALES, ids=[s[0] for s in SCALES])
def test_perf_lrgp_iteration(benchmark, label, build):
    optimizer = LRGP(build(), LRGPConfig.adaptive())
    optimizer.run(30)  # warm past the transient so the workload is typical
    benchmark(optimizer.step)


def test_perf_greedy_consumer_allocation(benchmark):
    from repro.core.consumer_allocation import allocate_consumers
    from repro.workloads.base import base_workload

    problem = base_workload()
    rates = {flow_id: 50.0 for flow_id in problem.flows}
    benchmark(allocate_consumers, problem, "S0", rates)


def test_perf_rate_allocation(benchmark):
    from repro.core.rate_allocation import allocate_rate
    from repro.workloads.base import base_workload

    problem = base_workload()
    populations = {class_id: 100 for class_id in problem.classes}
    benchmark(allocate_rate, problem, "f0", populations, 0.05)


def test_perf_annealing_steps(benchmark):
    """Throughput of the incremental SA move loop (steps/second matters
    because the paper's budgets are 10^6-10^8 steps)."""
    import random

    from repro.baselines.incremental import IncrementalState
    from repro.baselines.moves import MoveProposer
    from repro.model.allocation import zero_allocation
    from repro.workloads.base import base_workload

    problem = base_workload()
    state = IncrementalState(problem, zero_allocation(problem))
    proposer = MoveProposer(problem, random.Random(0))

    def thousand_steps():
        for _ in range(1000):
            move = proposer.propose(state)
            if move is not None and move.utility_delta > 0:
                state.apply(move)

    benchmark(thousand_steps)
