"""Extension E2: multirate delivery (the paper's §5 future work).

Expected: multirate never loses to single-rate, and wins clearly (>2%)
when node capacities are heterogeneous.
"""

from conftest import record_result

from repro.experiments.extensions import extension_multirate
from repro.experiments.reporting import render_table


def test_extension_multirate(benchmark):
    table = benchmark.pedantic(extension_multirate, rounds=1, iterations=1)
    record_result("extension_multirate", render_table(table))
    gains = [float(row[3].rstrip("%")) for row in table.rows]
    assert all(gain > -0.5 for gain in gains)  # never meaningfully worse
    assert gains[1] > 2.0  # clear win under heterogeneous capacity
