"""Extension E1: link pricing on a shared uplink.

The paper's workloads avoid link bottlenecks (§4.1); this extension
exercises eq. 13 end to end.  Expected: usage pins to the capacity and the
measured price matches the analytic equilibrium within 1%.
"""

import pytest
from conftest import record_result

from repro.experiments.extensions import extension_link_pricing
from repro.experiments.reporting import render_table


def test_extension_link_pricing(benchmark):
    table = benchmark.pedantic(extension_link_pricing, rounds=1, iterations=1)
    record_result("extension_link_pricing", render_table(table))
    for row in table.rows:
        capacity = float(row[0].replace(",", ""))
        usage = float(row[2].replace(",", ""))
        measured = float(row[3].replace(",", ""))
        analytic = float(row[4].replace(",", ""))
        assert usage == pytest.approx(capacity, rel=0.01)
        assert measured == pytest.approx(analytic, rel=0.02)
