"""Figure 3: recovery after flow 5 leaves at iteration 150.

Expected shape (paper section 4.2): the utility drops when the
highest-ranked flow leaves and recovers much quicker under adaptive gamma
than under a small fixed gamma.
"""

from conftest import record_result

from repro.experiments.figures import figure3_recovery
from repro.experiments.reporting import render_ascii_chart, render_series_rows


def test_figure3_recovery(benchmark):
    figure = benchmark.pedantic(figure3_recovery, rounds=1, iterations=1)
    text = render_ascii_chart(figure) + "\n\n" + render_series_rows(figure, every=5)
    record_result("figure3_recovery", text)
    adaptive, fixed = figure.series
    assert adaptive.ys[-1] > fixed.ys[-1], "adaptive should recover faster"
