"""Table 2: LRGP vs simulated annealing as the system grows.

Expected shape (paper sections 4.3-4.4): LRGP's utility matches the paper's
LRGP column within 1% and scales linearly with consumer nodes; SA trails
LRGP on every workload, and degrades as the number of independent variables
grows.  The SA step budget defaults to a laptop scale (REPRO_SA_STEPS to
override; the paper spent 10^8 steps = 23-357 minutes per workload).
"""

import pytest
from conftest import DEFAULT_LRGP_ITERATIONS, DEFAULT_SA_STEPS, record_result

from repro.experiments.reporting import render_table
from repro.experiments.tables import table2_scalability

PAPER_LRGP_UTILITIES = {
    "6 flows, 3 c-nodes": 1_328_821,
    "12 flows, 6 c-nodes": 2_657_600,
    "24 flows, 12 c-nodes": 5_313_612,
    "6 flows, 6 c-nodes": 2_656_706,
    "6 flows, 12 c-nodes": 5_313_412,
    "6 flows, 24 c-nodes": 10_626_824,
}


def test_table2_scalability(benchmark):
    table = benchmark.pedantic(
        table2_scalability,
        kwargs={
            "sa_steps": DEFAULT_SA_STEPS,
            "lrgp_iterations": DEFAULT_LRGP_ITERATIONS,
        },
        rounds=1,
        iterations=1,
    )
    record_result("table2_scalability", render_table(table))

    for row in table.rows:
        label = row[0]
        sa_utility = float(row[4].replace(",", ""))
        lrgp_utility = float(row[6].replace(",", ""))
        # Who wins: LRGP, on every row (paper: +6.5% .. +18.8%).
        assert lrgp_utility > sa_utility, label
        # LRGP absolute value matches the paper's LRGP column.
        assert lrgp_utility == pytest.approx(
            PAPER_LRGP_UTILITIES[label], rel=0.01
        ), label
