"""Extension E8: recovery under agent crashes (Figure 3, taken to the
distributed runtime).

Figure 3 shows LRGP recovering from a *workload* change; this benchmark
crashes an agent of the asynchronous deployment mid-run and measures the
recovery.  Two claims are asserted:

* the restarted node agent recovers to >= 99% of the pre-fault utility;
* checkpoint restore settles in measurably fewer post-restart samples
  than a cold restart of the same agent (which resets the node price to
  zero, transiently over-admits, and oscillates before settling).

The run archives ``results/extension_faults.txt`` (the rendered E8 table,
quoted in EXPERIMENTS.md) and ``results/BENCH_faults.json`` with the raw
recovery measurements.
"""

from __future__ import annotations

import json

from conftest import RESULTS_DIR, record_result

from repro.experiments.extensions import (
    extension_fault_recovery,
    fault_recovery_detail,
)
from repro.experiments.reporting import render_table

#: Acceptance floor: post-recovery utility vs the pre-fault level.
MIN_RETENTION = 0.99


def test_extension_fault_recovery(benchmark):
    table = benchmark.pedantic(extension_fault_recovery, rounds=1, iterations=1)
    record_result("extension_faults", render_table(table))

    checkpoint = fault_recovery_detail(cold=False)
    cold = fault_recovery_detail(cold=True)
    payload = {
        "single_crash": {detail["mode"]: detail for detail in (checkpoint, cold)},
        "table": {
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    for detail in (checkpoint, cold):
        assert detail["retention"] >= MIN_RETENTION, (
            f"{detail['mode']} restart retained only "
            f"{detail['retention']:.4f} of the pre-fault utility"
        )
        assert detail["samples_to_plateau"] is not None, (
            f"{detail['mode']} restart never settled back onto the "
            "pre-fault plateau"
        )
    assert checkpoint["samples_to_plateau"] < cold["samples_to_plateau"], (
        "checkpoint restore should settle in fewer post-restart samples "
        f"than a cold restart, got {checkpoint['samples_to_plateau']} vs "
        f"{cold['samples_to_plateau']}"
    )
