"""SA budget sweep: simulated annealing vs its step budget.

Measured finding: with our move kernel at T0=5 the walk saturates at
~1.147M within ~5e4 steps — extra budget buys nothing because at this
utility scale (deltas in the thousands vs temperature <= 5) downhill
acceptance is effectively zero once the reachable basin is exhausted.
The paper's SA reached 1.248M at 1e8 steps with an unspecified kernel;
LRGP's 1.329M beats both at every budget, which is the claim that
matters.
"""

from conftest import record_result

from repro.baselines.annealing import AnnealingConfig, simulated_annealing
from repro.core.lrgp import LRGP, LRGPConfig
from repro.experiments.reporting import TableResult, format_number, render_table
from repro.workloads.base import base_workload

BUDGETS = (50_000, 200_000, 1_000_000)


def run_sweep() -> TableResult:
    problem = base_workload()
    optimizer = LRGP(problem, LRGPConfig.adaptive())
    optimizer.run(250)
    lrgp = optimizer.utilities[-1]
    rows = []
    for steps in BUDGETS:
        result = simulated_annealing(
            problem,
            AnnealingConfig(start_temperature=5.0, max_steps=steps, seed=1),
        )
        gap = (lrgp - result.best_utility) / result.best_utility
        rows.append(
            (
                f"{steps:.0e}",
                format_number(result.best_utility),
                f"{result.runtime_seconds:.1f}",
                f"{gap * 100.0:.1f}%",
            )
        )
    rows.append(("1e+08 (paper)", "1,248,063", "1380.0", "6.5%"))
    return TableResult(
        table_id="SA budget sweep",
        title="Simulated annealing vs LRGP (1,328,885) as the step budget "
        "grows (base workload, T0=5)",
        columns=("SA steps", "SA best utility", "seconds", "LRGP gap"),
        rows=tuple(rows),
        notes="final row is the paper's reported SA result for context",
    )


def test_sweep_sa_budget(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_result("sweep_sa_budget", render_table(table))
    gaps = [float(row[3].rstrip("%")) for row in table.rows[:-1]]
    assert all(gap > 0.0 for gap in gaps)  # LRGP wins at every budget
    assert gaps[-1] <= gaps[0]  # gap narrows (or holds) with budget