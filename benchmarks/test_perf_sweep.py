"""Perf guard: the sweep farm scales with workers and the cache kills re-runs.

The farm (:mod:`repro.sweep`) exists to make grid experiments cheap two
ways: a process pool spreads cold cells across cores, and the
content-addressed cache makes a repeated grid free.  The guard runs the
same >=24-cell grid three times —

* cold, ``jobs=1``  (the serial baseline),
* cold, ``jobs=4``  (the parallel contender, its own cache),
* warm, ``jobs=4``  (the re-run, same cache as the contender),
* cold, ``jobs=4``, ``capture=True``  (telemetry-on, its own cache),

and requires (a) parallel speedup of at least :data:`SPEEDUP_THRESHOLD`
when the machine actually has :data:`REQUIRED_CORES` cores to offer —
containers pinned to one core measure but do not enforce — (b) a
100% hit rate with zero executed cells on the warm pass, unconditionally,
and (c) per-cell telemetry capture costing at most
:data:`CAPTURE_OVERHEAD_THRESHOLD` over the capture-off cold pass (also
core-gated: on an oversubscribed core, scheduling noise dwarfs capture).

Every run archives ``results/BENCH_sweep.json`` so ``repro bench
snapshot`` folds the farm numbers into the trajectory.  The speedup
guard is marked ``perf`` so it can be selected alone with ``-m perf``.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import RESULTS_DIR

from repro.sweep import ResultCache, SweepSpec, run_sweep

#: The ISSUE's acceptance bar: 4 workers >= 2.5x one worker on a cold grid.
SPEEDUP_THRESHOLD = 2.5
#: Cores the speedup guard needs before it enforces (measure-only below).
REQUIRED_CORES = 4
PARALLEL_JOBS = 4
#: Telemetry-on cold pass may cost at most 5% over telemetry-off.
CAPTURE_OVERHEAD_THRESHOLD = 1.05

#: 2 workloads x 3 methods x 2 seeds x 2 repeats = 24 cells.  The cells
#: are deliberately non-trivial (paper-scale iteration budgets on the
#: base and 12-flow workloads) so per-cell work, not pool overhead, is
#: what the speedup measures.
GRID = SweepSpec(
    workloads=("base", "flows-x2"),
    methods=("lrgp", "annealing", "hill_climb"),
    iterations=(1000,),
    seeds=(0, 1),
    repeats=2,
)


def available_cores() -> int:
    return len(os.sched_getaffinity(0))


def timed_pass(spec: SweepSpec, jobs: int, cache: ResultCache, **kwargs):
    start = time.perf_counter()
    result = run_sweep(spec, jobs=jobs, cache=cache, **kwargs)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def farm_rows(tmp_path_factory):
    """The four timed passes (shared by the archive and guard tests)."""
    serial_cache = ResultCache(tmp_path_factory.mktemp("serial"))
    parallel_cache = ResultCache(tmp_path_factory.mktemp("parallel"))
    captured_cache = ResultCache(tmp_path_factory.mktemp("captured"))
    serial, serial_seconds = timed_pass(GRID, 1, serial_cache)
    parallel, parallel_seconds = timed_pass(GRID, PARALLEL_JOBS, parallel_cache)
    warm, warm_seconds = timed_pass(GRID, PARALLEL_JOBS, parallel_cache)
    captured, captured_seconds = timed_pass(
        GRID, PARALLEL_JOBS, captured_cache, capture=True
    )
    return {
        "cells_total": len(serial),
        "cores": available_cores(),
        "serial": {"jobs": 1, "seconds": serial_seconds,
                   "executed": serial.executed},
        "parallel": {"jobs": PARALLEL_JOBS, "seconds": parallel_seconds,
                     "executed": parallel.executed},
        "warm": {"jobs": PARALLEL_JOBS, "seconds": warm_seconds,
                 "hits": warm.hits, "executed": warm.executed,
                 "hit_rate": warm.hits / len(warm)},
        "capture": {"jobs": PARALLEL_JOBS, "seconds": captured_seconds,
                    "executed": captured.executed,
                    "overhead": captured_seconds / parallel_seconds},
        "speedup": serial_seconds / parallel_seconds,
        "rerun_speedup": serial_seconds / warm_seconds,
    }


def test_benchmark_sweep_archives_results(farm_rows):
    payload = {
        "version": 1,
        "threshold": SPEEDUP_THRESHOLD,
        "capture_overhead_threshold": CAPTURE_OVERHEAD_THRESHOLD,
        "required_cores": REQUIRED_CORES,
        **farm_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(
        f"{farm_rows['cells_total']} cells on {farm_rows['cores']} core(s): "
        f"jobs=1 {farm_rows['serial']['seconds']:.2f}s, "
        f"jobs={PARALLEL_JOBS} {farm_rows['parallel']['seconds']:.2f}s "
        f"({farm_rows['speedup']:.2f}x), warm re-run "
        f"{farm_rows['warm']['seconds']:.3f}s "
        f"({farm_rows['rerun_speedup']:.0f}x), capture-on "
        f"{farm_rows['capture']['seconds']:.2f}s "
        f"({farm_rows['capture']['overhead']:.3f}x)"
    )
    assert farm_rows["cells_total"] >= 24
    assert farm_rows["serial"]["executed"] == farm_rows["cells_total"]
    assert farm_rows["parallel"]["executed"] == farm_rows["cells_total"]
    assert farm_rows["capture"]["executed"] == farm_rows["cells_total"]


def test_warm_rerun_is_all_hits(farm_rows):
    """The cache contract has no core-count excuse: always enforced."""
    assert farm_rows["warm"]["executed"] == 0
    assert farm_rows["warm"]["hits"] == farm_rows["cells_total"]
    assert farm_rows["warm"]["hit_rate"] == 1.0


@pytest.mark.perf
def test_parallel_speedup_on_cold_grid(farm_rows):
    if farm_rows["cores"] < REQUIRED_CORES:
        pytest.skip(
            f"only {farm_rows['cores']} core(s) available; speedup guard "
            f"needs {REQUIRED_CORES} (numbers still archived)"
        )
    assert farm_rows["speedup"] >= SPEEDUP_THRESHOLD, (
        f"jobs={PARALLEL_JOBS} is only {farm_rows['speedup']:.2f}x jobs=1 "
        f"on a cold {farm_rows['cells_total']}-cell grid "
        f"(bar: {SPEEDUP_THRESHOLD}x)"
    )


@pytest.mark.perf
def test_capture_overhead_is_bounded(farm_rows):
    """``--capture`` must be cheap enough to leave on for real sweeps."""
    if farm_rows["cores"] < REQUIRED_CORES:
        pytest.skip(
            f"only {farm_rows['cores']} core(s) available; overhead guard "
            f"needs {REQUIRED_CORES} (numbers still archived)"
        )
    overhead = farm_rows["capture"]["overhead"]
    assert overhead <= CAPTURE_OVERHEAD_THRESHOLD, (
        f"capture-on cold pass is {overhead:.3f}x the capture-off pass "
        f"(bar: {CAPTURE_OVERHEAD_THRESHOLD}x)"
    )
