"""Ablation A: node price determination (design choices of section 3.3).

Expected shape: the paper's damped benefit/cost price dominates; raw BC
(gamma=1) oscillates; an overload-only price (no BC coupling) collapses
utility because rates float to the cap and crowd out consumers.
"""

from conftest import DEFAULT_LRGP_ITERATIONS, record_result

from repro.experiments.ablations import ablation_node_price
from repro.experiments.reporting import render_table


def test_ablation_node_price(benchmark):
    table = benchmark.pedantic(
        ablation_node_price,
        kwargs={"iterations": DEFAULT_LRGP_ITERATIONS},
        rounds=1,
        iterations=1,
    )
    record_result("ablation_node_price", render_table(table))
    utilities = [float(row[1].replace(",", "")) for row in table.rows]
    assert utilities[0] == max(utilities)
