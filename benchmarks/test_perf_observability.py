"""Perf guard: the telemetry no-op path costs <5% of an LRGP iteration.

The observability layer promises that leaving ``LRGPConfig.telemetry`` at
its default (:data:`~repro.obs.NULL_TELEMETRY`) is effectively free.  The
uninstrumented seed code no longer exists to A/B against, so the guard
measures the proxy directly: one iteration's worth of null-telemetry
operations (the exact timers, guards, counter and gauge touches
``LRGP.step`` executes when telemetry is off) timed in isolation, divided
by the median measured iteration time.  That ratio must stay under 5%.

The run also archives ``results/BENCH_observability.json`` with the raw
numbers, including the cost of *enabled* telemetry (MemorySink) for
context — enabled mode is allowed to cost more; only the default path is
guarded.
"""

from __future__ import annotations

import json
import statistics
import time

from conftest import RESULTS_DIR

from repro.core.lrgp import LRGP, LRGPConfig
from repro.obs import NULL_TELEMETRY, MemorySink, Telemetry
from repro.workloads.base import base_workload

#: The ISSUE's acceptance threshold for the default (no-op) path.
MAX_NOOP_OVERHEAD = 0.05

WARMUP_ITERATIONS = 30
TIMED_ITERATIONS = 200
BUNDLE_REPEATS = 2000


def median_step_ns(telemetry: Telemetry) -> float:
    """Median wall time of one warm LRGP iteration under ``telemetry``."""
    optimizer = LRGP(base_workload(), LRGPConfig.adaptive(telemetry=telemetry))
    optimizer.run(WARMUP_ITERATIONS)
    samples = []
    sink = telemetry.sink
    for _ in range(TIMED_ITERATIONS):
        if isinstance(sink, MemorySink):
            sink.clear()  # keep the buffer from growing across samples
        start = time.perf_counter_ns()
        optimizer.step()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


def noop_bundle_ns() -> float:
    """Time one iteration's worth of null-telemetry operations.

    Mirrors exactly what ``LRGP.step`` adds per iteration when telemetry
    is disabled on the base workload: four null timers, one counter
    increment, one gauge set, the per-node ``telemetry.enabled`` guards
    (3 consumer nodes) and the per-controller/per-schedule
    ``probe is not None`` guards (3 node controllers + 3 gamma schedules).
    """
    telemetry = NULL_TELEMETRY
    registry = telemetry.registry
    probe = None
    start = time.perf_counter_ns()
    for _ in range(BUNDLE_REPEATS):
        touched = 0
        with registry.timer("lrgp.iteration"):
            with registry.timer("lrgp.rate_allocation"):
                pass
            with registry.timer("lrgp.consumer_allocation"):
                for _node in range(3):
                    if telemetry.enabled:  # pragma: no cover - never taken
                        touched += 1
                    if probe is not None:  # controller guard
                        touched += 1
                    if probe is not None:  # gamma-schedule guard
                        touched += 1
            with registry.timer("lrgp.link_prices"):
                pass
        registry.counter("lrgp.iterations").inc()
        registry.gauge("lrgp.utility").set(float(touched))
        if telemetry.enabled:  # pragma: no cover - never taken
            touched += 1
    return (time.perf_counter_ns() - start) / BUNDLE_REPEATS


def test_noop_telemetry_overhead_under_threshold():
    iteration_ns = median_step_ns(NULL_TELEMETRY)
    bundle_ns = noop_bundle_ns()
    enabled_ns = median_step_ns(Telemetry(sink=MemorySink()))
    noop_ratio = bundle_ns / iteration_ns
    payload = {
        "version": 1,
        "workload": "base",
        "timed_iterations": TIMED_ITERATIONS,
        "iteration_median_ns": iteration_ns,
        "noop_bundle_ns": bundle_ns,
        "noop_overhead_ratio": noop_ratio,
        "enabled_iteration_median_ns": enabled_ns,
        "enabled_overhead_ratio": enabled_ns / iteration_ns - 1.0,
        "threshold": MAX_NOOP_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_observability.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(
        f"iteration {iteration_ns:.0f}ns, null-telemetry bundle "
        f"{bundle_ns:.0f}ns ({100 * noop_ratio:.2f}% of an iteration), "
        f"enabled telemetry {enabled_ns:.0f}ns"
    )
    assert noop_ratio < MAX_NOOP_OVERHEAD, (
        f"null telemetry costs {100 * noop_ratio:.2f}% of an LRGP iteration "
        f"(budget {100 * MAX_NOOP_OVERHEAD:.0f}%)"
    )
