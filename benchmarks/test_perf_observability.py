"""Perf guard: the telemetry no-op path costs <5% of an LRGP iteration.

The observability layer promises that leaving ``LRGPConfig.telemetry`` at
its default (:data:`~repro.obs.NULL_TELEMETRY`) is effectively free.  The
uninstrumented seed code no longer exists to A/B against, so the guard
measures the proxy directly: one iteration's worth of null-telemetry
operations (the exact timers, guards, counter and gauge touches
``LRGP.step`` executes when telemetry is off) timed in isolation, divided
by the median measured iteration time.  That ratio must stay under 5%.

The run also archives ``results/BENCH_observability.json`` with the raw
numbers, including the cost of *enabled* telemetry (MemorySink) for
context — enabled mode is allowed to cost more; only the default path is
guarded.
"""

from __future__ import annotations

import json
import statistics
import time

from conftest import RESULTS_DIR

from repro.core.lrgp import LRGP, LRGPConfig
from repro.obs import NULL_TELEMETRY, MemorySink, Telemetry
from repro.workloads.base import base_workload

#: The ISSUE's acceptance threshold for the default (no-op) path.
MAX_NOOP_OVERHEAD = 0.05

WARMUP_ITERATIONS = 30
TIMED_ITERATIONS = 200
BUNDLE_REPEATS = 2000


def median_step_ns(telemetry: Telemetry) -> float:
    """Median wall time of one warm LRGP iteration under ``telemetry``."""
    optimizer = LRGP(base_workload(), LRGPConfig.adaptive(telemetry=telemetry))
    optimizer.run(WARMUP_ITERATIONS)
    samples = []
    sink = telemetry.sink
    for _ in range(TIMED_ITERATIONS):
        if isinstance(sink, MemorySink):
            sink.clear()  # keep the buffer from growing across samples
        start = time.perf_counter_ns()
        optimizer.step()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


def noop_bundle_ns() -> float:
    """Time one iteration's worth of null-telemetry operations.

    Mirrors exactly what ``LRGP.step`` adds per iteration when telemetry
    is disabled on the base workload: four null timers, one counter
    increment, one gauge set, the per-node ``telemetry.enabled`` guards
    (3 consumer nodes) and the per-controller/per-schedule
    ``probe is not None`` guards (3 node controllers + 3 gamma schedules),
    plus (since PR 7) the null-profiler spans — ``iteration``, ``argmax``,
    one ``admission`` and one ``price_update`` per consumer node, one
    link-price ``price_update``, and the per-run ``solve`` span amortized
    over the iterations.
    """
    telemetry = NULL_TELEMETRY
    registry = telemetry.registry
    profiler = telemetry.profiler
    probe = None
    start = time.perf_counter_ns()
    for _ in range(BUNDLE_REPEATS):
        touched = 0
        with registry.timer("lrgp.iteration"), profiler.phase("iteration"):
            with registry.timer("lrgp.rate_allocation"), profiler.phase(
                "argmax"
            ):
                pass
            with registry.timer("lrgp.consumer_allocation"):
                for _node in range(3):
                    with profiler.phase("admission"):
                        if telemetry.enabled:  # pragma: no cover - never taken
                            touched += 1
                    with profiler.phase("price_update"):
                        if probe is not None:  # controller guard
                            touched += 1
                    if probe is not None:  # gamma-schedule guard
                        touched += 1
            with registry.timer("lrgp.link_prices"), profiler.phase(
                "price_update"
            ):
                pass
        registry.counter("lrgp.iterations").inc()
        registry.gauge("lrgp.utility").set(float(touched))
        if telemetry.enabled:  # pragma: no cover - never taken
            touched += 1
    span_cost_start = time.perf_counter_ns()
    for _ in range(BUNDLE_REPEATS):
        with profiler.phase("solve"):  # one per run(); amortize conservatively
            pass
    solve_span_ns = (time.perf_counter_ns() - span_cost_start) / BUNDLE_REPEATS
    return (
        (span_cost_start - start) / BUNDLE_REPEATS + solve_span_ns
    )


def test_noop_telemetry_overhead_under_threshold():
    iteration_ns = median_step_ns(NULL_TELEMETRY)
    bundle_ns = noop_bundle_ns()
    enabled_ns = median_step_ns(Telemetry(sink=MemorySink()))
    noop_ratio = bundle_ns / iteration_ns
    payload = {
        "version": 1,
        "workload": "base",
        "timed_iterations": TIMED_ITERATIONS,
        "iteration_median_ns": iteration_ns,
        "noop_bundle_ns": bundle_ns,
        "noop_overhead_ratio": noop_ratio,
        "enabled_iteration_median_ns": enabled_ns,
        "enabled_overhead_ratio": enabled_ns / iteration_ns - 1.0,
        "threshold": MAX_NOOP_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_observability.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(
        f"iteration {iteration_ns:.0f}ns, null-telemetry bundle "
        f"{bundle_ns:.0f}ns ({100 * noop_ratio:.2f}% of an iteration), "
        f"enabled telemetry {enabled_ns:.0f}ns"
    )
    assert noop_ratio < MAX_NOOP_OVERHEAD, (
        f"null telemetry costs {100 * noop_ratio:.2f}% of an LRGP iteration "
        f"(budget {100 * MAX_NOOP_OVERHEAD:.0f}%)"
    )


PROFILE_ITERATIONS = 150

#: Acceptance bound: phase self-times must account for the measured
#: solve wall clock to within 2%.
MAX_ACCOUNTING_GAP = 0.02


def test_profiled_run_archives_phase_timings():
    """Profile flows-x4 and archive ``BENCH_profile.json``.

    The artifact feeds the bench watchdog: ``wall_time_seconds`` carries
    a latency-like leaf so a genuine slowdown is flagged, and the
    per-phase ``self_seconds`` entries are what ``repro bench compare``
    ranks in its regression-blame section.
    """
    from repro.obs import NullSink, PhaseProfiler
    from repro.workloads.scaling import scale_flows

    profiler = PhaseProfiler()
    telemetry = Telemetry(sink=NullSink(), enabled=False, profiler=profiler)
    optimizer = LRGP(scale_flows(4), LRGPConfig.adaptive(telemetry=telemetry))
    start = time.perf_counter_ns()
    optimizer.run(PROFILE_ITERATIONS)
    measured_ns = time.perf_counter_ns() - start
    report = profiler.report()

    assert report.total_self_wall_ns == report.total_wall_ns
    gap = abs(report.total_wall_ns - measured_ns) / measured_ns
    assert gap < MAX_ACCOUNTING_GAP, (
        f"phase self-times account for {100 * (1 - gap):.2f}% of the solve "
        f"wall clock (need {100 * (1 - MAX_ACCOUNTING_GAP):.0f}%)"
    )

    payload = {
        "version": 1,
        "workload": "flows-x4",
        "iterations": PROFILE_ITERATIONS,
        "wall_time_seconds": report.total_wall_ns / 1e9,
        "accounting_gap": gap,
        "phases": {
            stat.dotted: {
                "calls": stat.calls,
                "self_seconds": stat.self_wall_ns / 1e9,
                "total_seconds": stat.wall_ns / 1e9,
            }
            for stat in report.stats
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_profile.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(
        f"profiled flows-x4 x{PROFILE_ITERATIONS}: "
        f"{report.total_wall_ns / 1e6:.1f}ms across "
        f"{len(report.stats)} phase(s), accounting gap {100 * gap:.3f}%"
    )
