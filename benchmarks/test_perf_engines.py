"""Perf guard: the vectorized LRGP engine beats the reference dict engine.

The compiled engine (:mod:`repro.core.compiled`) exists to make large
workloads cheap, so the guard measures median per-iteration wall time of
both registered engines across the flow-scaling ladder and requires the
vectorized engine to be at least :data:`SPEEDUP_THRESHOLD` times faster
on the 24-flow workload (``flows-x4``, the paper's Table 2 scale point).

Small workloads are measured for context only: below ~6 flows the numpy
dispatch overhead dominates and the reference engine can win — that
crossover is expected and documented in ``docs/engines.md``, not guarded;
``solve()`` handles it via ``VECTORIZED_MIN_FLOWS`` (the archived
``dispatch`` section).

The *layout* ladder extends the measurements past the paper's scale:
``vectorized-dense`` vs ``vectorized-sparse`` from 24 flows up to the
1k-flow / 10k-link leaf-spine fabric, archived as the ``layout`` section
the same way ``dispatch`` records the PR 6 fallback.  The sparse-scale
guard (``-m perf``) additionally pins the tentpole memory claim: the
1k-flow leg must run entirely on the sparse incidence (dense matrices
never materialized) whose footprint is a small fraction of the dense one.

Every run archives ``results/BENCH_engines.json`` with the raw numbers.
The guards are marked ``perf`` so they can be selected alone with
``-m perf``.
"""

from __future__ import annotations

import json
import statistics
import time
from collections.abc import Callable

import pytest
from conftest import RESULTS_DIR

from repro.core.compiled import SPARSE_MIN_FLOWS, VectorizedEngine, compile_problem
from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.problem import Problem
from repro.workloads.base import base_workload
from repro.workloads.datacenter import leaf_spine_workload
from repro.workloads.micro import micro_workload
from repro.workloads.scaling import scale_flows

#: The ISSUE's acceptance bar: vectorized >= 3x reference at 24 flows.
SPEEDUP_THRESHOLD = 3.0
#: The workload the guard is enforced on (24 flows).
GUARD_WORKLOAD = "flows-x4"

WARMUP_ITERATIONS = 30
TIMED_ITERATIONS = 200

#: The scale guard's workload: >= 1k flows over a >= 10k-link fabric.
SCALE_WORKLOAD = "leafspine:flows=1024,leaves=100,leaves_per_flow=4,spines=100"
#: Reduced iteration counts for the large layout legs (per-step cost is
#: milliseconds there; medians stabilize quickly).
SCALE_WARMUP_ITERATIONS = 5
SCALE_TIMED_ITERATIONS = 25
#: The scale leg must keep at least this much of the dense footprint off
#: the table (the measured ratio is ~290x; 10x is the hard floor that
#: still proves nonzero-proportional scaling).
MEMORY_RATIO_FLOOR = 10.0

WORKLOADS: tuple[tuple[str, Callable[[], Problem]], ...] = (
    ("micro", micro_workload),
    ("base", base_workload),
    ("flows-x2", lambda: scale_flows(2)),
    ("flows-x4", lambda: scale_flows(4)),
    ("flows-x8", lambda: scale_flows(8)),
)

#: Dense-vs-sparse ladder: the paper ladder's top plus fabric workloads
#: around and past the crossover.  (name, factory, warmup, timed).
LAYOUT_WORKLOADS: tuple[
    tuple[str, Callable[[], Problem], int, int], ...
] = (
    ("flows-x4", lambda: scale_flows(4), WARMUP_ITERATIONS, TIMED_ITERATIONS),
    ("flows-x8", lambda: scale_flows(8), WARMUP_ITERATIONS, TIMED_ITERATIONS),
    (
        "leafspine:flows=256,leaves=64,spines=32",
        lambda: leaf_spine_workload(spines=32, leaves=64, flows=256),
        10,
        50,
    ),
    (
        SCALE_WORKLOAD,
        lambda: leaf_spine_workload(
            spines=100, leaves=100, flows=1024, leaves_per_flow=4
        ),
        SCALE_WARMUP_ITERATIONS,
        SCALE_TIMED_ITERATIONS,
    ),
)


def median_step_ns(
    problem: Problem,
    engine: str,
    warmup: int = WARMUP_ITERATIONS,
    timed: int = TIMED_ITERATIONS,
) -> float:
    """Median wall time of one warm LRGP iteration under ``engine``."""
    optimizer = LRGP(problem, LRGPConfig.adaptive(), engine=engine)
    optimizer.run(warmup)
    samples = []
    for _ in range(timed):
        start = time.perf_counter_ns()
        optimizer.step()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def engine_rows() -> list[dict[str, float | int | str]]:
    """Measure both engines on every workload (shared by both tests)."""
    rows: list[dict[str, float | int | str]] = []
    for name, factory in WORKLOADS:
        problem = factory()
        reference_ns = median_step_ns(problem, "reference")
        vectorized_ns = median_step_ns(problem, "vectorized")
        rows.append(
            {
                "name": name,
                "flows": len(problem.flows),
                "reference_ns": reference_ns,
                "vectorized_ns": vectorized_ns,
                "speedup": reference_ns / vectorized_ns,
            }
        )
    return rows


@pytest.fixture(scope="module")
def layout_rows() -> list[dict[str, float | int | str]]:
    """Measure both lowered layouts along the scale ladder.

    The reference engine is not run here — at the 1k-flow leg a single
    reference iteration costs more than the whole timed sample; its
    speedup story is already covered by ``engine_rows``.
    """
    rows: list[dict[str, float | int | str]] = []
    for name, factory, warmup, timed in LAYOUT_WORKLOADS:
        problem = factory()
        compiled = compile_problem(problem)
        dense_ns = median_step_ns(problem, "vectorized-dense", warmup, timed)
        sparse_ns = median_step_ns(problem, "vectorized-sparse", warmup, timed)
        rows.append(
            {
                "name": name,
                "flows": len(problem.flows),
                "links": compiled.n_links,
                "classes": compiled.n_classes,
                "incidence_nnz": compiled.nnz_link + compiled.nnz_node,
                "sparse_bytes": compiled.sparse_nbytes(),
                "dense_bytes": compiled.dense_nbytes(),
                "dense_ns": dense_ns,
                "sparse_ns": sparse_ns,
                "sparse_speedup": dense_ns / sparse_ns,
            }
        )
    return rows


def test_benchmark_engines_archives_results(engine_rows, layout_rows):
    payload = {
        "version": 2,
        "timed_iterations": TIMED_ITERATIONS,
        "warmup_iterations": WARMUP_ITERATIONS,
        "guard_workload": GUARD_WORKLOAD,
        "threshold": SPEEDUP_THRESHOLD,
        "workloads": engine_rows,
        "dispatch": {
            "crossover_flows": 4,
            "note": (
                "speedup < 1.0 at 2 flows (micro), > 2.3 at 6 flows (base); "
                "solve() falls back to the reference engine below "
                "VECTORIZED_MIN_FLOWS = 4 and records "
                "metadata['engine_fallback']"
            ),
            "source_workloads": ["micro", "base"],
        },
        "layout": {
            "crossover_flows": SPARSE_MIN_FLOWS,
            "note": (
                "dense and sparse layouts tie (0.94-1.05x) through ~64 "
                "flows; sparse wins past the crossover and holds a "
                f">={MEMORY_RATIO_FLOOR:.0f}x incidence-memory advantage at "
                "the 1k-flow fabric leg; layout='auto' switches at "
                "SPARSE_MIN_FLOWS"
            ),
            "source_workloads": [row["name"] for row in layout_rows],
            "workloads": layout_rows,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engines.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    for row in engine_rows:
        print(
            f"{row['name']:>9} ({row['flows']:>2} flows): reference "
            f"{row['reference_ns']:>9.0f}ns, vectorized "
            f"{row['vectorized_ns']:>9.0f}ns, speedup {row['speedup']:.2f}x"
        )
    for row in layout_rows:
        print(
            f"{row['name']:>42} ({row['flows']:>4} flows, "
            f"{row['links']:>5} links): dense {row['dense_ns']:>10.0f}ns, "
            f"sparse {row['sparse_ns']:>10.0f}ns "
            f"({row['sparse_speedup']:.2f}x), incidence "
            f"{row['sparse_bytes']}/{row['dense_bytes']} bytes"
        )
    for row in engine_rows:
        assert row["reference_ns"] > 0.0
        assert row["vectorized_ns"] > 0.0
    for row in layout_rows:
        assert row["dense_ns"] > 0.0
        assert row["sparse_ns"] > 0.0


@pytest.mark.perf
def test_vectorized_speedup_at_24_flows(engine_rows):
    row = next(r for r in engine_rows if r["name"] == GUARD_WORKLOAD)
    assert row["flows"] == 24
    assert row["speedup"] >= SPEEDUP_THRESHOLD, (
        f"vectorized engine is only {row['speedup']:.2f}x the reference "
        f"engine at {row['flows']} flows (bar: {SPEEDUP_THRESHOLD:.0f}x)"
    )


@pytest.mark.perf
def test_sparse_scale_1k_flows(layout_rows):
    """The tentpole claim: 1k+ flows / 10k+ links on nonzero-sized arrays.

    The auto layout must pick sparse at this size, solve without ever
    materializing a dense incidence matrix, and the sparse footprint must
    be a small fraction of what the dense matrices would occupy.
    """
    row = next(r for r in layout_rows if r["name"] == SCALE_WORKLOAD)
    assert row["flows"] >= 1024
    assert row["links"] >= 10_000
    assert row["dense_bytes"] / row["sparse_bytes"] >= MEMORY_RATIO_FLOOR

    problem = leaf_spine_workload(
        spines=100, leaves=100, flows=1024, leaves_per_flow=4
    )
    engine = VectorizedEngine(problem, LRGPConfig.adaptive())
    assert engine.sparse, "auto layout must go sparse at 1k flows"
    outcome = None
    for _ in range(SCALE_WARMUP_ITERATIONS):
        outcome = engine.step()
    assert outcome is not None and outcome.utility > 0.0
    assert not engine.compiled.dense_materialized(), (
        "sparse-layout solve materialized a dense incidence matrix"
    )
