"""Perf guard: the vectorized LRGP engine beats the reference dict engine.

The compiled engine (:mod:`repro.core.compiled`) exists to make large
workloads cheap, so the guard measures median per-iteration wall time of
both registered engines across the flow-scaling ladder and requires the
vectorized engine to be at least :data:`SPEEDUP_THRESHOLD` times faster
on the 24-flow workload (``flows-x4``, the paper's Table 2 scale point).

Small workloads are measured for context only: below ~6 flows the numpy
dispatch overhead dominates and the reference engine can win — that
crossover is expected and documented in ``docs/engines.md``, not guarded.

Every run archives ``results/BENCH_engines.json`` with the raw numbers.
The guard itself is marked ``perf`` so it can be selected alone with
``-m perf``.
"""

from __future__ import annotations

import json
import statistics
import time
from collections.abc import Callable

import pytest
from conftest import RESULTS_DIR

from repro.core.lrgp import LRGP, LRGPConfig
from repro.model.problem import Problem
from repro.workloads.base import base_workload
from repro.workloads.micro import micro_workload
from repro.workloads.scaling import scale_flows

#: The ISSUE's acceptance bar: vectorized >= 3x reference at 24 flows.
SPEEDUP_THRESHOLD = 3.0
#: The workload the guard is enforced on (24 flows).
GUARD_WORKLOAD = "flows-x4"

WARMUP_ITERATIONS = 30
TIMED_ITERATIONS = 200

WORKLOADS: tuple[tuple[str, Callable[[], Problem]], ...] = (
    ("micro", micro_workload),
    ("base", base_workload),
    ("flows-x2", lambda: scale_flows(2)),
    ("flows-x4", lambda: scale_flows(4)),
    ("flows-x8", lambda: scale_flows(8)),
)


def median_step_ns(problem: Problem, engine: str) -> float:
    """Median wall time of one warm LRGP iteration under ``engine``."""
    optimizer = LRGP(problem, LRGPConfig.adaptive(), engine=engine)
    optimizer.run(WARMUP_ITERATIONS)
    samples = []
    for _ in range(TIMED_ITERATIONS):
        start = time.perf_counter_ns()
        optimizer.step()
        samples.append(time.perf_counter_ns() - start)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def engine_rows() -> list[dict[str, float | int | str]]:
    """Measure both engines on every workload (shared by both tests)."""
    rows: list[dict[str, float | int | str]] = []
    for name, factory in WORKLOADS:
        problem = factory()
        reference_ns = median_step_ns(problem, "reference")
        vectorized_ns = median_step_ns(problem, "vectorized")
        rows.append(
            {
                "name": name,
                "flows": len(problem.flows),
                "reference_ns": reference_ns,
                "vectorized_ns": vectorized_ns,
                "speedup": reference_ns / vectorized_ns,
            }
        )
    return rows


def test_benchmark_engines_archives_results(engine_rows):
    payload = {
        "version": 1,
        "timed_iterations": TIMED_ITERATIONS,
        "warmup_iterations": WARMUP_ITERATIONS,
        "guard_workload": GUARD_WORKLOAD,
        "threshold": SPEEDUP_THRESHOLD,
        "workloads": engine_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engines.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    for row in engine_rows:
        print(
            f"{row['name']:>9} ({row['flows']:>2} flows): reference "
            f"{row['reference_ns']:>9.0f}ns, vectorized "
            f"{row['vectorized_ns']:>9.0f}ns, speedup {row['speedup']:.2f}x"
        )
    for row in engine_rows:
        assert row["reference_ns"] > 0.0
        assert row["vectorized_ns"] > 0.0


@pytest.mark.perf
def test_vectorized_speedup_at_24_flows(engine_rows):
    row = next(r for r in engine_rows if r["name"] == GUARD_WORKLOAD)
    assert row["flows"] == 24
    assert row["speedup"] >= SPEEDUP_THRESHOLD, (
        f"vectorized engine is only {row['speedup']:.2f}x the reference "
        f"engine at {row['flows']} flows (bar: {SPEEDUP_THRESHOLD:.0f}x)"
    )
