"""Extension E3: the two-stage approximation's pruning pass (§2.4).

Expected: no pruning (and no loss) on the healthy base workload; on a
workload with a starved node, stage 2 recovers several percent of utility
by dropping the flow-node costs of abandoned branches.
"""

from conftest import record_result

from repro.experiments.extensions import extension_two_stage
from repro.experiments.reporting import render_table


def test_extension_two_stage(benchmark):
    table = benchmark.pedantic(extension_two_stage, rounds=1, iterations=1)
    record_result("extension_two_stage", render_table(table))
    gains = [float(row[4].rstrip("%")) for row in table.rows]
    assert all(gain > -0.5 for gain in gains)
    assert gains[1] > 1.0  # starved-node workload benefits from pruning
