"""Validation: the linear cost model (eq. 4-5) against the metered simulator.

The paper validated its constraint equations on the Gryphon system
(section 2.3); we validate them against the discrete-event broker: enact an
LRGP allocation, meter per-message resource charges, compare measured rates
with the model's predictions.  Expected: sub-percent agreement for nodes.
"""

from conftest import record_result

from repro.core.lrgp import LRGP
from repro.events.simulator import EventInfrastructure
from repro.experiments.reporting import TableResult, render_table
from repro.workloads.base import base_workload


def run_validation():
    problem = base_workload()
    optimizer = LRGP(problem)
    optimizer.run(120)
    infra = EventInfrastructure(problem)
    infra.enact(optimizer.allocation())
    comparisons = infra.measure(duration=3.0, settle=0.2)
    return TableResult(
        table_id="Validation",
        title="Measured vs predicted resource rates (eq. 4-5)",
        columns=("resource", "measured", "predicted", "rel. error"),
        rows=tuple(
            (
                c.resource,
                f"{c.measured:,.1f}",
                f"{c.predicted:,.1f}",
                f"{c.relative_error:.4f}",
            )
            for c in comparisons
        ),
        notes="deterministic producers, 3s window after 0.2s settle",
    ), comparisons


def test_validation_cost_model(benchmark):
    table, comparisons = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    record_result("validation_cost_model", render_table(table))
    for comparison in comparisons:
        assert comparison.relative_error < 0.05, comparison
